"""Regression gate for delta-aware invalidation: measure and check speedups.

Measures two mutate-then-requery workloads with ``dag_cache_delta=on``
(journal-validated retention + incremental CSR patching) vs ``off`` (the
historical wholesale eviction), asserts bit-identical results, and compares
the speedup ratios against the floors committed in
``BENCH_incremental.json`` at the repo root.

* ``csr_patch`` — reweight one edge, re-snapshot: ``as_csr`` patches the
  frozen arrays in O(|Δ| + copy) instead of re-walking the adjacency.
* ``dag_requery`` — reweight an inert chord (on no shortest path), then
  re-query 32 cached weighted distance rows: the journal validity test
  retains every row, so the round costs O(K·|Δ|) comparisons instead of
  K Dijkstra traversals.

Speedup *ratios* (off time / on time, both measured on the same machine in
the same process) are robust to absolute machine speed, so the committed
baseline transfers across CI runners.  The floors sit well below the
locally measured ratios to absorb scheduler noise; a regression that
erases the incremental advantage still trips them loudly.

Usage::

    python benchmarks/check_incremental_baseline.py           # check (CI gate)
    python benchmarks/check_incremental_baseline.py --update  # refresh measurements

``--update`` rewrites the ``measured_speedup`` fields (keeping the
``min_speedup`` floors) so the committed file documents real numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_incremental.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

_SCALE = float(os.environ.get("REPRO_BENCH_INCREMENTAL_SCALE", "1.0"))
_REPEATS = int(os.environ.get("REPRO_BENCH_INCREMENTAL_REPEATS", "3"))
_EDITS = max(4, int(40 * _SCALE))
_SOURCES = 32

#: The inert chord toggles between these weights; both are far heavier than
#: any shortest path, so the journal proves every cached row unaffected.
_HEAVY = (1.0e6, 2.0e6)


def _build_graph(topology: str):
    from repro.graphs.generators import (
        weighted_barabasi_albert_graph,
        weighted_grid_road_graph,
    )

    if topology == "road":
        side = max(20, int(60 * _SCALE))
        graph = weighted_grid_road_graph(side, side, seed=7)[0]
    else:
        n = max(200, int(4000 * _SCALE))
        graph = weighted_barabasi_albert_graph(n, 4, seed=7)
    nodes = list(graph.nodes())
    chord = (nodes[0], nodes[-1])
    if not graph.has_edge(*chord):
        graph.add_edge(*chord, weight=_HEAVY[0])
    else:  # extremely unlikely, but keep the workload well-defined
        graph.set_edge_weight(*chord, _HEAVY[0])
    return graph, chord


def _toggle(graph, chord, step: int) -> None:
    graph.set_edge_weight(*chord, _HEAVY[(step + 1) % 2])


def _time_csr_patch(topology: str, mode: str) -> float:
    """Edit-then-resnapshot: incremental patch vs full rebuild."""
    from repro.graphs import csr as csr_module
    from repro.graphs import delta as delta_module

    delta_module.set_default_dag_cache_delta(mode)
    try:
        graph, chord = _build_graph(topology)
        csr_module.as_csr(graph)  # warm the snapshot, arm the journal
        best = float("inf")
        for _ in range(_REPEATS):
            start = time.perf_counter()
            for step in range(_EDITS):
                _toggle(graph, chord, step)
                csr_module.as_csr(graph)
            best = min(best, time.perf_counter() - start)
        # The final snapshot must be byte-identical to a from-scratch build.
        patched = csr_module.as_csr(graph)
        fresh = csr_module.CSRGraph.from_graph(graph)
        assert patched.indptr.tobytes() == fresh.indptr.tobytes()
        assert patched.indices.tobytes() == fresh.indices.tobytes()
        assert patched.weights.tobytes() == fresh.weights.tobytes()
        return best
    finally:
        delta_module.set_default_dag_cache_delta(None)


def _time_dag_requery(topology: str, mode: str) -> float:
    """Edit-then-requery K cached weighted rows: retention vs recompute."""
    from repro.engine.dag_cache import SourceDAGCache
    from repro.graphs import csr as csr_module
    from repro.graphs import delta as delta_module

    delta_module.set_default_dag_cache_delta(mode)
    try:
        graph, chord = _build_graph(topology)
        snapshot = csr_module.as_csr(graph)
        step_size = max(1, snapshot.n // _SOURCES)
        sources = [
            snapshot.labels[i]
            for i in range(0, snapshot.n, step_size)
        ][:_SOURCES]
        cache = SourceDAGCache(max_entries=4 * _SOURCES)
        for source in sources:
            cache.distances(graph, source, weighted=True)
        best = float("inf")
        for _ in range(_REPEATS):
            start = time.perf_counter()
            for step in range(_EDITS):
                _toggle(graph, chord, step)
                for source in sources:
                    cache.distances(graph, source, weighted=True)
            best = min(best, time.perf_counter() - start)
        # Retained rows must equal a from-scratch computation.
        row = cache.distances(graph, sources[0], weighted=True)
        fresh = SourceDAGCache.compute_distances(
            graph, sources[0], weighted=True
        )
        assert list(row) == list(fresh)
        if mode == "on":
            assert cache.stats()["delta_retained"] > 0
        return best
    finally:
        delta_module.set_default_dag_cache_delta(None)


def measure():
    """Return {(topology, scenario): speedup} with correctness asserted."""
    timers = {"csr_patch": _time_csr_patch, "dag_requery": _time_dag_requery}
    results = {}
    for topology in ("road", "social"):
        for scenario, timer in timers.items():
            off = timer(topology, "off")
            on = timer(topology, "on")
            results[(topology, scenario)] = off / on
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite measured_speedup fields in BENCH_incremental.json",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(BASELINE_PATH.read_text())
    measured = measure()

    failures = []
    for entry in baseline["entries"]:
        key = (entry["topology"], entry["scenario"])
        speedup = measured[key]
        label = f"{entry['topology']}/{entry['scenario']}"
        print(
            f"{label}: delta-on vs off speedup {speedup:.2f}x "
            f"(floor {entry['min_speedup']:.2f}x, "
            f"recorded {entry['measured_speedup']:.2f}x)"
        )
        if args.update:
            entry["measured_speedup"] = round(speedup, 2)
        elif speedup < entry["min_speedup"]:
            failures.append(
                f"{label}: {speedup:.2f}x below the {entry['min_speedup']:.2f}x floor"
            )

    if args.update:
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0
    if failures:
        print("\nREGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("\nall scenarios at or above their committed speedup floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
