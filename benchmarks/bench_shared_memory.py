"""Shared-memory worker-pool benchmarks: zero-copy CSR handoff and
in-worker partial folds.

Three executor contracts are compared on the exact-Brandes source sweep —
the workload whose IPC the PR's fold change targets:

* ``legacy-rows`` — the pre-fold contract: every chunk ships its per-source
  dependency vectors (O(chunk x n) floats) back to the master, which folds
  them there; the graph reaches workers as a pickle payload.
* ``partial-pickle`` — the current contract: each chunk folds its sources
  in-worker and ships ONE reduced vector (O(n) floats); graph still pickled.
* ``partial-shared`` — the current contract plus the zero-copy handoff: the
  frozen CSR arrays are exported to ``multiprocessing.shared_memory`` once
  per pool and workers attach views instead of unpickling the adjacency.

Closeness sweeps (whose per-source results are already two integers) are
benchmarked across the payload modes only.

The module forces the ``spawn`` start method: under ``fork`` workers inherit
the parent's memory and neither payload mode copies anything, so the modes
would be indistinguishable by construction.  Every benchmark also records
the *structural* costs as ``extra_info`` — pickled payload bytes and result
bytes per chunk — because on laptop-scale graphs (and especially on
single-CPU CI runners) interpreter startup dominates wall-clock while the
shipped-bytes ratios are what actually scale with ``n``: the per-chunk
result stream shrinks by the chunk size (32x) and the payload pickle by
~1000x.  All three contracts produce bit-identical totals (asserted below);
equal results at lower IPC is the point.

Run with::

    pytest benchmarks/bench_shared_memory.py --benchmark-only \
        --benchmark-group-by=func,param:topology \
        --benchmark-json=bench-shared-memory.json

``REPRO_BENCH_SHM_SCALE`` (default 1.0) scales graph and pivot sizes down
for smoke runs (CI uses 0.2).
"""

from __future__ import annotations

import math
import os
import pickle

import pytest

from repro import parallel
from repro.centrality.brandes import _dependency_chunk
from repro.centrality.closeness import closeness_centrality
from repro.graphs import csr as csr_module
from repro.graphs.generators import barabasi_albert_graph, grid_road_graph

_SCALE = float(os.environ.get("REPRO_BENCH_SHM_SCALE", "1.0"))

TOPOLOGIES = ("road", "social")
MODES = ("legacy-rows", "partial-pickle", "partial-shared")
PAYLOADS = ("pickle", "shared")
WORKER_COUNTS = (0, 2, 4)


def _scaled(value: int, floor: int = 4) -> int:
    return max(floor, int(value * _SCALE))


def _make_graph(topology: str):
    if topology == "road":
        side = _scaled(120, floor=24)
        return grid_road_graph(side, side, seed=7)[0]
    return barabasi_albert_graph(_scaled(20000, floor=500), 5, seed=7)


def _spread_nodes(graph, count: int):
    nodes = list(graph.nodes())
    step = max(1, len(nodes) // count)
    return nodes[::step][:count]


def _legacy_rows_chunk(payload, chunk):
    """The pre-fold worker task: per-source vectors shipped to the master."""
    graph, backend = payload
    graph = parallel.resolve_payload_graph(graph)
    snapshot = csr_module.as_csr(graph)
    indices = [snapshot.index_of(source) for source in chunk]
    rows = csr_module.multi_source_sweep(
        snapshot, indices, kind=csr_module.SWEEP_BRANDES
    )
    for index, row in zip(indices, rows):
        row[index] = 0.0
    return rows


@pytest.fixture(scope="module", autouse=True)
def _spawn_start_method():
    # The override mirrors into REPRO_START_METHOD (displacing any prior
    # value) and None restores it — no hand-rolled save/restore needed.
    parallel.set_default_start_method("spawn")
    yield
    parallel.set_default_start_method(None)


@pytest.fixture(autouse=True)
def _shared_memory_reset():
    yield
    parallel.set_shared_memory_enabled(None)


@pytest.fixture(scope="module")
def graphs():
    built = {name: _make_graph(name) for name in TOPOLOGIES}
    for graph in built.values():
        csr_module.as_csr(graph).adjacency_lists()
    return built


def _brandes_payload(graph, mode: str):
    parallel.set_shared_memory_enabled(mode == "partial-shared")
    return (parallel.shareable_graph(graph, "csr"), "csr")


def _run_brandes_sweep(task, payload, chunks, workers: int, n: int):
    """One exact-Brandes pivot sweep through the executor; returns totals."""
    import numpy as np

    totals = np.zeros(n, dtype=np.float64)
    with parallel.WorkerPool(task, payload=payload, workers=workers) as pool:
        for part in pool.imap(chunks):
            if isinstance(part, list):  # legacy: one vector per source
                for row in part:
                    np.add(totals, row, out=totals)
            else:
                np.add(totals, part, out=totals)
    return totals


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_exact_brandes(benchmark, graphs, topology, mode, workers):
    graph = graphs[topology]
    snapshot = csr_module.as_csr(graph)
    pivots = _spread_nodes(
        graph,
        _scaled(
            256 if topology == "road" else 64,
            floor=2 * parallel.SOURCE_CHUNK_SIZE,
        ),
    )
    chunks = parallel.chunked(pivots, parallel.SOURCE_CHUNK_SIZE)
    task = _legacy_rows_chunk if mode == "legacy-rows" else _dependency_chunk

    def run():
        payload = _brandes_payload(graph, mode)
        return _run_brandes_sweep(task, payload, chunks, workers, snapshot.n)

    totals = benchmark(run)

    # The partial-fold contracts are bit-identical to the serial path; the
    # legacy mode reproduces the *old* accumulation order, which agrees to
    # float rounding (its reassociation is exactly what the fold change
    # re-fixed as a pure function of the chunk layout).
    reference = _run_brandes_sweep(
        _dependency_chunk, (graph, "csr"), chunks, 0, snapshot.n
    )
    if mode == "legacy-rows":
        import numpy as np

        assert np.allclose(totals, reference, rtol=1e-12, atol=0.0)
    else:
        assert list(totals) == list(reference)
    payload = _brandes_payload(graph, mode)
    sample = task(payload, chunks[0])
    result_blob = pickle.dumps(sample)
    benchmark.extra_info["payload_bytes"] = len(pickle.dumps(payload))
    benchmark.extra_info["result_bytes_per_chunk"] = len(result_blob)
    benchmark.extra_info["num_chunks"] = len(chunks)
    benchmark.extra_info["n"] = snapshot.n
    if isinstance(payload[0], parallel.SharedCSRPayload):
        payload[0].release()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("payload_mode", PAYLOADS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_closeness(benchmark, graphs, topology, payload_mode, workers):
    graph = graphs[topology]
    selected = _spread_nodes(graph, _scaled(512 if topology == "road" else 128))

    def run():
        parallel.set_shared_memory_enabled(payload_mode == "shared")
        return closeness_centrality(
            graph, selected, backend="csr", workers=workers
        )

    result = benchmark(run)

    parallel.set_shared_memory_enabled(None)
    reference = closeness_centrality(graph, selected, backend="csr", workers=0)
    assert result == reference
    wrapped = parallel.shareable_graph(graph, "csr") if payload_mode == "shared" else graph
    benchmark.extra_info["payload_bytes"] = len(pickle.dumps((wrapped, "csr")))
    benchmark.extra_info["num_sources"] = len(selected)
    if isinstance(wrapped, parallel.SharedCSRPayload):
        wrapped.release()


def test_bench_summary_capacity():
    """Sanity guard: the scaled workloads stay non-trivial.

    Even at the CI smoke scale the road sweep must span multiple executor
    chunks, otherwise the chunk-partial fold contract is not exercised.
    """
    side = _scaled(120, floor=24)
    assert side * side >= 2 * parallel.SOURCE_CHUNK_SIZE
    pivots = _scaled(256, floor=2 * parallel.SOURCE_CHUNK_SIZE)
    assert math.ceil(pivots / parallel.SOURCE_CHUNK_SIZE) >= 2
    assert side * side >= pivots
