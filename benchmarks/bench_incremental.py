"""Incremental-update benchmarks: mutate-then-requery with the journal on/off.

Two workloads on a weighted road grid and a weighted BA social graph (scaled
by ``REPRO_BENCH_INCREMENTAL_SCALE``), each run with ``dag_cache_delta=on``
(mutation journal: validated retention + incremental CSR patching) and
``off`` (the historical wholesale eviction):

* **Snapshot refresh** — reweight one edge, then ``as_csr``: an O(|Δ| +
  copy) array patch vs a full adjacency re-walk.  Patched snapshots are
  byte-identical to a from-scratch build (asserted here and in
  ``tests/test_delta.py``).
* **Cached-row requery** — reweight an inert heavy chord (on no shortest
  path), then re-query 32 cached weighted distance rows through the
  ``SourceDAGCache``: O(K·|Δ|) journal validation vs K Dijkstra sweeps.

``benchmarks/check_incremental_baseline.py`` measures the same workloads
head-to-head and gates CI on the speedup floors committed in
``BENCH_incremental.json``.

Run with::

    pytest benchmarks/bench_incremental.py --benchmark-only -q
"""

from __future__ import annotations

import os

import pytest

from repro.engine.dag_cache import SourceDAGCache
from repro.graphs import csr as csr_module
from repro.graphs import delta as delta_module
from repro.graphs.generators import (
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)

TOPOLOGIES = ("social", "road")
MODES = ("on", "off")

_SCALE = float(os.environ.get("REPRO_BENCH_INCREMENTAL_SCALE", "1.0"))
_SOURCES = 32
_HEAVY = (1.0e6, 2.0e6)


def _make_graph(topology: str):
    if topology == "social":
        n = max(200, int(4000 * _SCALE))
        graph = weighted_barabasi_albert_graph(n, 4, seed=7)
    else:
        side = max(20, int(60 * _SCALE))
        graph = weighted_grid_road_graph(side, side, seed=7)[0]
    nodes = list(graph.nodes())
    chord = (nodes[0], nodes[-1])
    if not graph.has_edge(*chord):
        graph.add_edge(*chord, weight=_HEAVY[0])
    else:
        graph.set_edge_weight(*chord, _HEAVY[0])
    return graph, chord


@pytest.fixture(params=MODES)
def delta_mode(request):
    delta_module.set_default_dag_cache_delta(request.param)
    yield request.param
    delta_module.set_default_dag_cache_delta(None)


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_snapshot_refresh(benchmark, topology, delta_mode):
    """Reweight one edge, re-snapshot: incremental patch vs full rebuild."""
    graph, chord = _make_graph(topology)
    csr_module.as_csr(graph)  # warm the snapshot, arm the journal
    state = {"step": 0}

    def edit_and_resnapshot():
        state["step"] += 1
        graph.set_edge_weight(*chord, _HEAVY[state["step"] % 2])
        return csr_module.as_csr(graph)

    snapshot = benchmark(edit_and_resnapshot)
    fresh = csr_module.CSRGraph.from_graph(graph)
    assert snapshot.indptr.tobytes() == fresh.indptr.tobytes()
    assert snapshot.indices.tobytes() == fresh.indices.tobytes()
    assert snapshot.weights.tobytes() == fresh.weights.tobytes()


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_cached_row_requery(benchmark, topology, delta_mode):
    """Reweight an inert chord, re-query K cached weighted distance rows."""
    graph, chord = _make_graph(topology)
    snapshot = csr_module.as_csr(graph)
    step_size = max(1, snapshot.n // _SOURCES)
    sources = [snapshot.labels[i] for i in range(0, snapshot.n, step_size)]
    sources = sources[:_SOURCES]
    cache = SourceDAGCache(max_entries=4 * _SOURCES)
    for source in sources:
        cache.distances(graph, source, weighted=True)
    state = {"step": 0}

    def edit_and_requery():
        state["step"] += 1
        graph.set_edge_weight(*chord, _HEAVY[state["step"] % 2])
        return [
            cache.distances(graph, source, weighted=True)
            for source in sources
        ]

    rows = benchmark(edit_and_requery)
    fresh = SourceDAGCache.compute_distances(graph, sources[0], weighted=True)
    assert list(rows[0]) == list(fresh)
    if delta_mode == "on":
        assert cache.stats()["delta_retained"] > 0
    else:
        assert cache.stats()["delta_retained"] == 0
