"""Weighted SSSP engine benchmarks: BFS vs Dijkstra vs delta-stepping, and
weighted Brandes/closeness end-to-end.

Four comparisons, each on a road grid and a BA social graph (scaled by
``REPRO_BENCH_WEIGHTED_SCALE``):

* **Engine A/B on unit weights** — the same unit-weight graph through the
  BFS engine (``weighted="off"``) and the forced Dijkstra engine
  (``weighted="on"``).  This is the *price of generality*: the priority
  queue pays a log-factor and loses level batching, which is why the
  ``auto`` routing keeps unit-weight graphs on BFS.
* **Weighted kernels, dict vs CSR** — the Dijkstra engine over the
  hash-based adjacency vs the flat CSR arrays (bit-identical results).
* **Weighted exact centrality** — weighted Brandes and weighted closeness
  on the weighted generators registered in the dataset registry.
* **Batched sweep kernels** — K stacked weighted sources through per-source
  Dijkstra vs the delta-stepping bucket kernel (``sssp_kernel`` knob, same
  CSR backend, bit-identical rows).  ``benchmarks/check_weighted_baseline.py``
  asserts the speedup floor recorded in ``BENCH_weighted.json`` in CI.

The bit-identity of dict/CSR weighted results is asserted inside the
benches themselves, so a kernel regression fails loudly here as well as in
the equivalence suite.

Run with::

    pytest benchmarks/bench_weighted.py --benchmark-only -q
"""

from __future__ import annotations

import os

import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.centrality.closeness import closeness_centrality
from repro.graphs import csr as csr_module
from repro.graphs.generators import (
    barabasi_albert_graph,
    grid_road_graph,
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)
from repro.graphs.traversal import sssp_distances

TOPOLOGIES = ("social", "road")

_SCALE = float(os.environ.get("REPRO_BENCH_WEIGHTED_SCALE", "1.0"))


def _sizes(topology: str):
    if topology == "social":
        return max(200, int(4000 * _SCALE)), 4
    side = max(20, int(60 * _SCALE))
    return side, side


def _make_unit(topology: str):
    if topology == "social":
        n, m = _sizes(topology)
        return barabasi_albert_graph(n, m, seed=7)
    rows, cols = _sizes(topology)
    return grid_road_graph(rows, cols, seed=7)[0]


def _make_weighted(topology: str):
    if topology == "social":
        n, m = _sizes(topology)
        return weighted_barabasi_albert_graph(n, m, seed=7)
    rows, cols = _sizes(topology)
    return weighted_grid_road_graph(rows, cols, seed=7)[0]


@pytest.fixture(scope="module")
def unit_graphs():
    built = {name: _make_unit(name) for name in TOPOLOGIES}
    for graph in built.values():
        csr_module.as_csr(graph).adjacency_lists()
    return built


@pytest.fixture(scope="module")
def weighted_graphs():
    built = {name: _make_weighted(name) for name in TOPOLOGIES}
    for graph in built.values():
        snapshot = csr_module.as_csr(graph)
        snapshot.adjacency_lists()
        snapshot.weight_list()
    return built


@pytest.mark.parametrize("engine", ("bfs", "dijkstra"))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_engine_ab_unit_weights(benchmark, unit_graphs, topology, engine):
    """BFS vs forced-Dijkstra on the same unit-weight graph (CSR backend)."""
    graph = unit_graphs[topology]
    weighted = "off" if engine == "bfs" else "on"
    sources = list(graph.nodes())[:4]
    state = {"index": 0}

    def one_sweep():
        source = sources[state["index"] % len(sources)]
        state["index"] += 1
        return sssp_distances(graph, source, backend="csr", weighted=weighted)

    distances = benchmark(one_sweep)
    assert len(distances) == graph.number_of_nodes()


@pytest.mark.parametrize("backend", ("dict", "csr"))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_weighted_sssp(benchmark, weighted_graphs, topology, backend):
    """The Dijkstra distance kernel, dict adjacency vs flat CSR arrays."""
    graph = weighted_graphs[topology]
    sources = list(graph.nodes())[:4]
    state = {"index": 0}

    def one_sweep():
        source = sources[state["index"] % len(sources)]
        state["index"] += 1
        return sssp_distances(graph, source, backend=backend)

    distances = benchmark(one_sweep)
    assert len(distances) == graph.number_of_nodes()
    # Bit-identity cross-check on the first source.
    assert sssp_distances(graph, sources[0], backend="dict") == sssp_distances(
        graph, sources[0], backend="csr"
    )


@pytest.mark.parametrize("backend", ("dict", "csr"))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_weighted_brandes(benchmark, weighted_graphs, topology, backend):
    """Exact weighted betweenness over a pivot subset (per-source Dijkstra)."""
    graph = weighted_graphs[topology]
    from repro.centrality.brandes import betweenness_from_pivots

    pivots = list(graph.nodes())[:16]
    scores = benchmark(
        lambda: betweenness_from_pivots(graph, pivots, backend=backend)
    )
    assert len(scores) <= graph.number_of_nodes()
    reference = betweenness_from_pivots(graph, pivots, backend="dict")
    assert scores == reference


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_weighted_closeness(benchmark, weighted_graphs, topology):
    """Weighted closeness over a source subset (CSR backend)."""
    graph = weighted_graphs[topology]
    nodes = list(graph.nodes())[:32]
    scores = benchmark(
        lambda: closeness_centrality(graph, nodes, backend="csr")
    )
    assert set(scores) == set(nodes)
    assert scores == closeness_centrality(graph, nodes, backend="dict")


def _sweep_sources(snapshot, count: int = 32):
    step = max(1, snapshot.n // count)
    return list(range(0, snapshot.n, step))[:count]


@pytest.mark.parametrize("kernel", ("dijkstra", "delta"))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_batched_sweep_kernels(benchmark, weighted_graphs, topology, kernel):
    """Batched weighted distance sweeps: per-source Dijkstra vs the
    delta-stepping bucket kernel (same CSR backend, bit-identical rows).

    This is the PR 6 headline comparison — the ``auto`` kernel routing
    sends exactly this shape of work (K stacked weighted sources) to the
    bucket kernel.
    """
    graph = weighted_graphs[topology]
    snapshot = csr_module.as_csr(graph)
    sources = _sweep_sources(snapshot)

    rows = benchmark(
        lambda: csr_module.multi_source_sweep(
            snapshot, sources, kind="distance", weighted=True, sssp_kernel=kernel
        )
    )
    assert len(rows) == len(sources)
    # Bit-identity cross-check against the other kernel on the first rows.
    other = "delta" if kernel == "dijkstra" else "dijkstra"
    check = csr_module.multi_source_sweep(
        snapshot, sources[:4], kind="distance", weighted=True, sssp_kernel=other
    )
    for mine, theirs in zip(rows[:4], check):
        assert list(mine) == list(theirs)


@pytest.mark.parametrize("kernel", ("dijkstra", "delta"))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_batched_sigma_sweep_kernels(
    benchmark, weighted_graphs, topology, kernel
):
    """Batched weighted sigma sweeps (the sampling engine's workload)."""
    graph = weighted_graphs[topology]
    snapshot = csr_module.as_csr(graph)
    sources = _sweep_sources(snapshot)

    rows = benchmark(
        lambda: csr_module.multi_source_sweep(
            snapshot, sources, kind="sigma", weighted=True, sssp_kernel=kernel
        )
    )
    assert len(rows) == len(sources)
    other = "delta" if kernel == "dijkstra" else "dijkstra"
    check = csr_module.multi_source_sweep(
        snapshot, sources[:2], kind="sigma", weighted=True, sssp_kernel=other
    )
    for (dist_a, sigma_a), (dist_b, sigma_b) in zip(rows[:2], check):
        assert list(dist_a) == list(dist_b)
        assert list(sigma_a) == list(sigma_b)


def test_weighted_full_betweenness_smoke(weighted_graphs):
    """Non-benchmark guard: full weighted Brandes stays bit-identical across
    backends and worker counts at bench scale."""
    graph = weighted_graphs["road"]
    if graph.number_of_nodes() > 1500:
        graph = graph.subgraph(list(graph.nodes())[:1500])
    reference = betweenness_centrality(graph, backend="dict")
    assert betweenness_centrality(graph, backend="csr") == reference
    assert betweenness_centrality(graph, backend="csr", workers=2) == reference
