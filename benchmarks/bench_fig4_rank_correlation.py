"""Fig. 4: Spearman rank correlation vs epsilon.

The paper's headline result: SaPHyRa_bc's rank correlation dominates the
whole-network baselines across the epsilon grid, and the baselines' quality
varies wildly between target subsets (wide confidence intervals).
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import figure4_rank_correlation
from repro.experiments.report import render_table
from repro.experiments.runner import ALGORITHM_LABELS


def test_fig4_rank_correlation(benchmark, runner):
    rows = benchmark.pedantic(lambda: runner.epsilon_sweep(), rounds=1, iterations=1)
    series = figure4_rank_correlation(rows=rows)
    for dataset, curves in series.items():
        print(f"\n== Fig. 4 ({dataset}): Spearman correlation (mean [95% CI]) ==")
        epsilons = sorted(
            {x for points in curves.values() for x, *_ in points}, reverse=True
        )
        table_rows = []
        for eps in epsilons:
            row = [eps]
            for label in curves:
                point = next((p for p in curves[label] if p[0] == eps), None)
                row.append(
                    f"{point[1]:.3f} [{point[2]:.2f},{point[3]:.2f}]" if point else "-"
                )
            table_rows.append(row)
        print(render_table(["epsilon"] + list(curves), table_rows))

    # Structural claim: averaged over datasets and epsilons, SaPHyRa_bc's
    # correlation is at least as high as each whole-network baseline's.
    means = {label: [] for label in ALGORITHM_LABELS.values()}
    for curves in series.values():
        for label, points in curves.items():
            means[label].extend(mean for _, mean, _, _ in points)
    saphyra_mean = statistics.fmean(means[ALGORITHM_LABELS["saphyra"]])
    for baseline in ("abra", "kadabra"):
        baseline_mean = statistics.fmean(means[ALGORITHM_LABELS[baseline]])
        assert saphyra_mean >= baseline_mean - 0.02
        benchmark.extra_info[f"mean_spearman_{baseline}"] = baseline_mean
    benchmark.extra_info["mean_spearman_saphyra"] = saphyra_mean
