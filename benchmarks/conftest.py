"""Shared configuration for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at a
laptop-friendly scale.  A single session-scoped :class:`ExperimentRunner` is
shared across benchmark modules so that datasets, ground truth and the
whole-network baseline estimates are computed once and reused, exactly as the
paper's evaluation reuses them across figures.

Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` flag shows the rendered tables).  Scale knobs can be raised via
the ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SUBSETS`` environment variables.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner


def bench_config() -> ExperimentConfig:
    """The benchmark-wide configuration (environment-tunable)."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
    num_subsets = int(os.environ.get("REPRO_BENCH_SUBSETS", "2"))
    return ExperimentConfig(
        datasets=("flickr", "livejournal", "usa-road", "orkut"),
        scale=scale,
        seed=7,
        epsilons=(0.2, 0.1, 0.05),
        delta=0.01,
        subset_size=40,
        num_subsets=num_subsets,
        subset_sizes=(10, 20, 40),
        max_samples_cap=30_000,
    )


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner shared by all benchmarks."""
    return ExperimentRunner(bench_config())
