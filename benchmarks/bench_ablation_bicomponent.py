"""Ablation: bi-component (ISP) sampling vs plain node-pair path sampling.

SaPHyRa_bc samples shortest paths *inside one biconnected component* and adds
the cutpoint correction analytically.  The plain alternative (what RK /
KADABRA do) samples paths between arbitrary node pairs on the whole graph.
On social graphs with pendant fringes the blocks are smaller than the graph,
so the ISP sampler scans fewer adjacency entries per sample; on road-like
graphs the per-sample cost is similar and the bi-component gain shows up in
the VC bound instead (see ``bench_ablation_vc_bounds``).
"""

from __future__ import annotations

import random

from repro.experiments.report import render_table
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP


def test_ablation_bicomponent_sampling(benchmark, runner):
    dataset = runner.dataset("flickr")
    graph = dataset.graph
    targets = runner.subsets("flickr", 30, 1)[0]
    num_samples = 300

    def run_both():
        # ISP sampling (SaPHyRa_bc's Gen_bc).
        space = PersonalizedISP(graph, targets, block_cut_tree=runner.block_cut_tree("flickr"))
        generator = GenBC(space, targets)
        rng = random.Random(5)
        for _ in range(num_samples):
            generator.sample_path(rng)
        isp_edges = generator.stats.visited_edges

        # Whole-graph node-pair path sampling (the baselines' sampler).
        rng = random.Random(5)
        nodes = list(graph.nodes())
        plain_edges = 0
        for _ in range(num_samples):
            source = rng.choice(nodes)
            target = rng.choice(nodes)
            while target == source:
                target = rng.choice(nodes)
            result = bidirectional_shortest_paths(graph, source, target)
            plain_edges += result.visited_edges
        return isp_edges, plain_edges

    isp_edges, plain_edges = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n== Ablation: edges scanned per sampler "
          f"({num_samples} samples, flickr surrogate) ==")
    print(
        render_table(
            ["sampler", "edges scanned", "edges per sample"],
            [
                ("bi-component (Gen_bc)", isp_edges, isp_edges / num_samples),
                ("whole-graph node pairs", plain_edges, plain_edges / num_samples),
            ],
        )
    )
    # The bi-component sampler should scan fewer edges per sample: its BFS
    # stays inside the 2-connected core instead of wandering into the
    # pendant fringe.
    assert isp_edges <= plain_edges
    benchmark.extra_info["isp_edges"] = isp_edges
    benchmark.extra_info["plain_edges"] = plain_edges
