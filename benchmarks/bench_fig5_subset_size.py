"""Fig. 5: rank correlation vs subset size at fixed epsilon.

The paper observes that the whole-network baselines' ranking quality gets
*noisier* as the subset shrinks (their estimate ignores the subset), while
SaPHyRa_bc stays high across sizes.
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import figure5_subset_size
from repro.experiments.report import render_table


def test_fig5_subset_size(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: figure5_subset_size(runner=runner, epsilon=0.1),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig. 5: Spearman correlation by subset size (epsilon = 0.1) ==")
    print(
        render_table(
            ["dataset", "algorithm", "subset size", "mean spearman", "ci low", "ci high"],
            [
                (
                    row.dataset,
                    row.algorithm,
                    row.subset_size,
                    row.mean_spearman,
                    row.spearman_ci_low,
                    row.spearman_ci_high,
                )
                for row in rows
            ],
        )
    )
    # Structural claim: averaged over datasets and sizes SaPHyRa_bc is at
    # least as good as the baselines.
    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row.algorithm, []).append(row.mean_spearman)
    saphyra = statistics.fmean(by_algorithm["saphyra"])
    for baseline in ("abra", "kadabra"):
        assert saphyra >= statistics.fmean(by_algorithm[baseline]) - 0.02
    benchmark.extra_info["mean_spearman_saphyra"] = saphyra
