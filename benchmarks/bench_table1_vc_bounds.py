"""Table I: VC-dimension bound comparison (diameter vs bi-component vs subset)."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table1_vc_bounds


def test_table1_vc_bounds(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: table1_vc_bounds(runner=runner), rounds=1, iterations=1
    )
    print("\n== Table I: VC-dimension bounds ==")
    print(
        render_table(
            ["dataset", "subset", "|A|", "VD(V)", "BD(V)", "BS(A)",
             "VC RK", "VC SaPHyRa full", "VC SaPHyRa subset"],
            [
                (
                    row.dataset,
                    row.subset_kind,
                    row.subset_size,
                    row.report.vertex_diameter,
                    row.report.max_block_diameter,
                    row.report.bs_value,
                    row.report.riondato_vc,
                    row.report.bicomponent_vc,
                    row.report.personalized_vc,
                )
                for row in rows
            ],
        )
    )
    # Paper's claim: the bounds only get tighter moving right across Table I.
    for row in rows:
        assert row.report.bicomponent_vc <= row.report.riondato_vc
        assert row.report.personalized_vc <= row.report.riondato_vc
        benchmark.extra_info[f"{row.dataset}_{row.subset_kind}"] = (
            row.report.personalized_vc
        )
