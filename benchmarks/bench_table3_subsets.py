"""Table III: geographic subsets of the USA-road surrogate."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table3_subsets


def test_table3_road_subsets(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: table3_subsets(runner=runner), rounds=1, iterations=1
    )
    print("\n== Table III: USA-road geographic subsets ==")
    print(
        render_table(
            ["area", "nodes", "edges"],
            [(row.area, row.num_nodes, row.num_edges) for row in rows],
        )
    )
    assert len(rows) == 4
    sizes = [row.num_nodes for row in rows]
    # NYC < BAY < CO < FL ordering, as in the paper's Table III.
    assert sizes == sorted(sizes)
    for row in rows:
        benchmark.extra_info[row.area] = row.num_nodes
