"""Fig. 3: running time vs epsilon for ABRA, KADABRA, SaPHyRa_bc-full, SaPHyRa_bc.

The absolute numbers are pure-Python seconds on surrogate graphs; the figure's
message is the *ordering* and the *trend*: SaPHyRa_bc (subset) should not be
slower than SaPHyRa_bc-full, and the gap between the subset-aware methods and
the whole-network baselines should widen as epsilon shrinks.
"""

from __future__ import annotations

from repro.experiments.figures import figure3_running_time
from repro.experiments.report import render_table
from repro.experiments.runner import ALGORITHM_LABELS


def test_fig3_running_time(benchmark, runner):
    rows = benchmark.pedantic(lambda: runner.epsilon_sweep(), rounds=1, iterations=1)
    series = figure3_running_time(rows=rows)
    for dataset, curves in series.items():
        print(f"\n== Fig. 3 ({dataset}): mean running time in seconds ==")
        epsilons = sorted({x for points in curves.values() for x, _ in points}, reverse=True)
        print(
            render_table(
                ["epsilon"] + list(curves),
                [
                    [eps] + [
                        next((t for x, t in curves[label] if x == eps), "-")
                        for label in curves
                    ]
                    for eps in epsilons
                ],
            )
        )

    # Structural claim: ranking only a subset is never slower on average than
    # ranking the whole network with the same machinery.
    saphyra_label = ALGORITHM_LABELS["saphyra"]
    full_label = ALGORITHM_LABELS["saphyra_full"]
    faster_cells = 0
    total_cells = 0
    for curves in series.values():
        for (eps_a, subset_time), (eps_b, full_time) in zip(
            curves[saphyra_label], curves[full_label]
        ):
            assert eps_a == eps_b
            total_cells += 1
            if subset_time <= full_time:
                faster_cells += 1
    assert faster_cells >= 0.7 * total_cells
    benchmark.extra_info["subset_faster_than_full_fraction"] = (
        faster_cells / total_cells
    )
