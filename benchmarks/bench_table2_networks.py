"""Table II: networks summary (nodes, edges, diameter, block structure)."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table2_networks


def test_table2_networks(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: table2_networks(runner=runner), rounds=1, iterations=1
    )
    print("\n== Table II: networks summary (surrogate vs. paper scale) ==")
    print(
        render_table(
            ["dataset", "nodes", "edges", "diameter", "blocks", "cutpoints",
             "paper nodes", "paper edges", "paper diam."],
            [
                (
                    row.dataset,
                    row.summary.num_nodes,
                    row.summary.num_edges,
                    row.summary.diameter,
                    row.summary.num_blocks,
                    row.summary.num_cutpoints,
                    f"{row.paper_nodes:.1e}",
                    f"{row.paper_edges:.1e}",
                    row.paper_diameter,
                )
                for row in rows
            ],
        )
    )
    assert len(rows) == len(runner.config.datasets)
    for row in rows:
        benchmark.extra_info[f"{row.dataset}_nodes"] = row.summary.num_nodes
        benchmark.extra_info[f"{row.dataset}_edges"] = row.summary.num_edges
    # The road surrogate must have a much larger diameter than the social
    # surrogates, as in the paper's Table II.
    by_name = {row.dataset: row for row in rows}
    assert by_name["usa-road"].summary.diameter > by_name["orkut"].summary.diameter
