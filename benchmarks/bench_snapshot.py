"""Snapshot-store benchmarks: cold start and worker-payload size.

Three workloads on the Flickr-surrogate (social) and USA-road-surrogate
(road) registry datasets, scaled by ``REPRO_BENCH_SNAPSHOT_SCALE``:

* **Cold load** — :func:`load_snapshot` with memory-mapping: the O(header +
  labels) attach that replaces a generator run + ``CSRGraph.from_graph``
  freeze at process start.  Loaded arrays are asserted byte-identical to a
  from-scratch build.
* **Rebuild baseline** — the historical cold start (generator +
  ``from_graph``), benchmarked for side-by-side comparison.
* **Payload pickle** — ``pickle.dumps`` of the snapshot-file worker
  payload: a path + header handle of a few hundred bytes, independent of
  graph size, with zero shared-memory blocks exported.

``benchmarks/check_snapshot_baseline.py`` measures the same workloads
head-to-head and gates CI on the ratio floors committed in
``BENCH_snapshot.json``.

Run with::

    pytest benchmarks/bench_snapshot.py --benchmark-only -q
"""

from __future__ import annotations

import os
import pickle

import pytest

import repro.parallel as parallel
from repro.datasets import load
from repro.graphs.csr import CSRGraph
from repro.graphs.store import load_snapshot, save_snapshot

TOPOLOGIES = ("social", "road")
_DATASETS = {"social": "flickr", "road": "usa-road"}
_SCALE = float(os.environ.get("REPRO_BENCH_SNAPSHOT_SCALE", "1.0"))


def _build_csr(topology: str) -> CSRGraph:
    dataset = load(_DATASETS[topology], scale=_SCALE, seed=7)
    return CSRGraph.from_graph(dataset.graph)


@pytest.fixture(params=TOPOLOGIES)
def snapshot_path(request, tmp_path):
    path = tmp_path / f"{request.param}.csr"
    save_snapshot(_build_csr(request.param), path)
    return request.param, path


def test_bench_cold_load(benchmark, snapshot_path):
    """Memory-mapped snapshot attach: the out-of-core cold start."""
    topology, path = snapshot_path
    loaded = benchmark(load_snapshot, path)
    fresh = _build_csr(topology)
    assert loaded.indptr.tobytes() == fresh.indptr.tobytes()
    assert loaded.indices.tobytes() == fresh.indices.tobytes()
    assert loaded.labels == fresh.labels


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_rebuild_baseline(benchmark, topology):
    """Generator + from_graph: the historical cold start, for comparison."""
    csr = benchmark(_build_csr, topology)
    assert csr.n > 0


def test_bench_payload_pickle(benchmark, snapshot_path):
    """Pickling the snapshot-file worker payload (path + header)."""
    if not parallel.shared_memory_available():
        pytest.skip("numpy/shared_memory unavailable")
    _topology, path = snapshot_path
    csr = load_snapshot(path)
    payload = parallel.shareable_graph(csr, backend="csr")
    assert isinstance(payload, parallel.SharedCSRPayload)
    blob = benchmark(pickle.dumps, payload)
    assert len(blob) < 512
    assert payload.block_names() == []
