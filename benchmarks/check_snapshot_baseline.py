"""Regression gate for the snapshot store: cold-start and payload ratios.

Measures the out-of-core snapshot path head-to-head against the historical
build-everything-in-RAM path, asserts bit-identity, and compares the ratios
against the floors committed in ``BENCH_snapshot.json`` at the repo root.

* ``cold_load`` — time to a ready CSR in a fresh process: memory-mapped
  :func:`load_snapshot` (O(header + labels) attach) vs re-running the
  dataset generator and re-freezing with ``CSRGraph.from_graph``.  The
  ratio is ``rebuild_time / load_time``.
* ``payload_bytes`` — worker-handoff size: the raw CSR array bytes a
  pickle fallback would ship per pool, vs ``pickle.dumps`` of the
  snapshot-file payload (path + header).  The ratio is
  ``array_bytes / payload_bytes``.

Both are same-process ratios, so the committed baseline transfers across
machines; the floors sit far below the measured numbers (the ISSUE
acceptance floor for ``cold_load`` is 5x) so only a real regression —
losing the zero-copy attach or the file handoff — trips them.

Usage::

    python benchmarks/check_snapshot_baseline.py           # check (CI gate)
    python benchmarks/check_snapshot_baseline.py --update  # refresh measurements

``--update`` rewrites the ``measured_speedup`` fields (keeping the
``min_speedup`` floors) so the committed file documents real numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_snapshot.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

_SCALE = float(os.environ.get("REPRO_BENCH_SNAPSHOT_SCALE", "1.0"))
_REPEATS = int(os.environ.get("REPRO_BENCH_SNAPSHOT_REPEATS", "3"))
_LOADS = max(4, int(20 * _SCALE))

#: Registry datasets standing in for the two paper topology families.
_DATASETS = {"social": "flickr", "road": "usa-road"}


def _array_bytes(csr) -> int:
    total = len(csr.indptr.tobytes()) + len(csr.indices.tobytes())
    if csr.weights is not None:
        total += len(csr.weights.tobytes())
    return total


def _build_csr(topology: str):
    from repro.datasets import load
    from repro.graphs.csr import CSRGraph

    dataset = load(_DATASETS[topology], scale=_SCALE, seed=7)
    return CSRGraph.from_graph(dataset.graph)


def _snapshot_for(topology: str, directory: Path) -> Path:
    from repro.graphs.store import save_snapshot

    path = directory / f"{topology}.csr"
    save_snapshot(_build_csr(topology), path)
    return path


def _ratio_cold_load(topology: str, directory: Path) -> float:
    """Generator + from_graph rebuild time over mmap snapshot-attach time."""
    from repro.graphs.store import load_snapshot

    path = _snapshot_for(topology, directory)
    rebuild = float("inf")
    for _ in range(_REPEATS):
        start = time.perf_counter()
        fresh = _build_csr(topology)
        rebuild = min(rebuild, time.perf_counter() - start)
    attach = float("inf")
    for _ in range(_REPEATS):
        start = time.perf_counter()
        for _ in range(_LOADS):
            loaded = load_snapshot(path)
        attach = min(attach, (time.perf_counter() - start) / _LOADS)
    # The attached snapshot must be byte-identical to a from-scratch build.
    assert loaded.indptr.tobytes() == fresh.indptr.tobytes()
    assert loaded.indices.tobytes() == fresh.indices.tobytes()
    assert loaded.labels == fresh.labels
    return rebuild / attach


def _ratio_payload_bytes(topology: str, directory: Path) -> float:
    """Raw CSR array bytes over the pickled snapshot-file payload bytes."""
    import repro.parallel as parallel
    from repro.graphs.store import load_snapshot

    path = _snapshot_for(topology, directory)
    csr = load_snapshot(path)
    payload = parallel.shareable_graph(csr, backend="csr")
    if not isinstance(payload, parallel.SharedCSRPayload):  # pragma: no cover
        raise RuntimeError("expected a SharedCSRPayload; is shared memory off?")
    blob = pickle.dumps(payload)
    fn, _args = payload._handle
    assert fn is parallel._attach_snapshot_file, "file handoff did not engage"
    assert payload.block_names() == [], "file handoff must not export blocks"
    return _array_bytes(csr) / len(blob)


_SCENARIOS = {"cold_load": _ratio_cold_load, "payload_bytes": _ratio_payload_bytes}


def measure():
    """Return {(topology, scenario): ratio} with bit-identity asserted."""
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-snapshot-") as tmp:
        directory = Path(tmp)
        for topology in sorted(_DATASETS):
            for scenario, ratio in _SCENARIOS.items():
                results[(topology, scenario)] = ratio(topology, directory)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite measured_speedup fields in BENCH_snapshot.json",
    )
    args = parser.parse_args(argv)

    from repro.parallel import shared_memory_available

    if not shared_memory_available():
        # The payload scenario needs the shared-memory stack (numpy); the
        # no-numpy CI leg gates nothing here rather than measuring noise.
        print("shared memory unavailable; skipping snapshot baseline gate")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    measured = measure()

    failures = []
    for entry in baseline["entries"]:
        key = (entry["topology"], entry["scenario"])
        ratio = measured[key]
        label = f"{entry['topology']}/{entry['scenario']}"
        print(
            f"{label}: snapshot vs rebuild ratio {ratio:.2f}x "
            f"(floor {entry['min_speedup']:.2f}x, "
            f"recorded {entry['measured_speedup']:.2f}x)"
        )
        if args.update:
            entry["measured_speedup"] = round(ratio, 2)
        elif ratio < entry["min_speedup"]:
            failures.append(
                f"{label}: {ratio:.2f}x below the {entry['min_speedup']:.2f}x floor"
            )

    if args.update:
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0
    if failures:
        print("\nREGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("\nall scenarios at or above their committed ratio floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
