"""Micro-benchmarks of the substrate primitives.

These are classic pytest-benchmark timings (multiple rounds) of the graph
kernels everything else is built on: biconnected decomposition, block-cut
tree construction, balanced bidirectional BFS, one ``Gen_bc`` sample, the
``Exact_bc`` pass and one full Brandes single-source dependency pass.

The ``*_kernel_scale`` benchmarks run the BFS/Brandes kernels on a
social-style graph large enough for the CSR backend's array kernels to show
their real speedup (the scaled-down dataset stand-ins above are too small to
amortise numpy call overhead); run them with ``REPRO_BACKEND=dict`` /
``REPRO_BACKEND=csr`` to compare backends, or see
``bench_backend_comparison.py`` for the parametrised side-by-side timings.
"""

from __future__ import annotations

import random

import pytest

from repro.centrality.brandes import single_source_dependencies
from repro.graphs import csr as csr_module
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.biconnected import biconnected_components
from repro.graphs.block_cut_tree import build_block_cut_tree
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.traversal import bfs_distances
from repro.saphyra_bc.exact_bc import exact_two_hop_risks
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP


@pytest.fixture(scope="module")
def social_graph(runner):
    return runner.dataset("livejournal").graph


@pytest.fixture(scope="module")
def road_graph(runner):
    return runner.dataset("usa-road").graph


def test_bench_biconnected_components(benchmark, social_graph):
    decomposition = benchmark(biconnected_components, social_graph)
    assert decomposition.components


def test_bench_block_cut_tree(benchmark, social_graph):
    tree = benchmark(build_block_cut_tree, social_graph)
    assert tree.gamma > 0


def test_bench_bidirectional_bfs_social(benchmark, social_graph):
    nodes = list(social_graph.nodes())
    rng = random.Random(3)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(64)]
    state = {"index": 0}

    def one_query():
        source, target = pairs[state["index"] % len(pairs)]
        state["index"] += 1
        return bidirectional_shortest_paths(social_graph, source, target)

    result = benchmark(one_query)
    assert result.distance is None or result.distance >= 1


def test_bench_bidirectional_bfs_road(benchmark, road_graph):
    nodes = list(road_graph.nodes())
    rng = random.Random(3)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(64)]
    state = {"index": 0}

    def one_query():
        source, target = pairs[state["index"] % len(pairs)]
        state["index"] += 1
        return bidirectional_shortest_paths(road_graph, source, target)

    result = benchmark(one_query)
    assert result.distance is None or result.distance >= 1


def test_bench_gen_bc_sample(benchmark, runner, social_graph):
    targets = runner.subsets("livejournal", 40, 1)[0]
    space = PersonalizedISP(
        social_graph, targets, block_cut_tree=runner.block_cut_tree("livejournal")
    )
    generator = GenBC(space, targets)
    rng = random.Random(9)
    path = benchmark(lambda: generator.sample_path(rng))
    assert len(path) >= 2


def test_bench_exact_bc(benchmark, runner, social_graph):
    targets = runner.subsets("livejournal", 40, 1)[0]
    space = PersonalizedISP(
        social_graph, targets, block_cut_tree=runner.block_cut_tree("livejournal")
    )
    evaluation = benchmark(exact_two_hop_risks, space, targets)
    assert 0.0 <= evaluation.lambda_exact <= 1.0


def test_bench_brandes_single_source(benchmark, social_graph):
    source = next(iter(social_graph.nodes()))
    dependencies = benchmark(single_source_dependencies, social_graph, source)
    assert dependencies


@pytest.fixture(scope="module")
def kernel_scale_graph():
    graph = barabasi_albert_graph(20000, 5, seed=7)
    # Prime the CSR snapshot so the kernels, not the one-off snapshot
    # construction, are what gets timed.
    csr_module.as_csr(graph).adjacency_lists()
    return graph


def test_bench_bfs_kernel_scale(benchmark, kernel_scale_graph):
    sources = list(kernel_scale_graph.nodes())[:8]
    state = {"index": 0}

    def one_bfs():
        source = sources[state["index"] % len(sources)]
        state["index"] += 1
        return bfs_distances(kernel_scale_graph, source)

    distances = benchmark(one_bfs)
    assert len(distances) == kernel_scale_graph.number_of_nodes()


def test_bench_brandes_kernel_scale(benchmark, kernel_scale_graph):
    source = next(iter(kernel_scale_graph.nodes()))
    dependencies = benchmark(
        single_source_dependencies, kernel_scale_graph, source
    )
    assert dependencies
