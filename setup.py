"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` keeps working on offline machines whose
setuptools lacks the ``wheel`` package required by PEP 517 editable builds
(pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
