"""Tests for the personalized VC-dimension bounds (Table I machinery)."""

from __future__ import annotations

import pytest

from repro.graphs.block_cut_tree import build_block_cut_tree
from repro.graphs.generators import cycle_graph, path_graph
from repro.saphyra_bc.isp import PersonalizedISP
from repro.saphyra_bc.vc_bounds import (
    bs_bound,
    max_block_diameter,
    personalized_vc_dimension,
    vc_bound_report,
    vc_from_hop_diameter,
)


class TestVcFromHopDiameter:
    @pytest.mark.parametrize(
        "diameter,expected", [(0, 0), (1, 0), (2, 1), (3, 2), (5, 3), (9, 4)]
    )
    def test_values(self, diameter, expected):
        assert vc_from_hop_diameter(diameter) == expected


class TestBlockDiameter:
    def test_path_graph_blocks_are_edges(self):
        tree = build_block_cut_tree(path_graph(10))
        assert max_block_diameter(tree, seed=1) == 1

    def test_cycle_single_block(self):
        tree = build_block_cut_tree(cycle_graph(10))
        assert max_block_diameter(tree, seed=1) == 5

    def test_karate(self, karate):
        tree = build_block_cut_tree(karate)
        # The giant block dominates; its diameter is at most the graph's.
        assert 1 <= max_block_diameter(tree, seed=1) <= 5


class TestBsBound:
    def test_bounded_by_subset_size(self, karate):
        tree = build_block_cut_tree(karate)
        assert bs_bound(tree, [0, 1], seed=1) <= 2

    def test_bounded_by_block_diameter(self):
        # On a path every block is a single edge -> no inner nodes at all.
        tree = build_block_cut_tree(path_graph(8))
        assert bs_bound(tree, [2, 3, 4], seed=1) == 0

    def test_true_upper_bound_on_enumeration(self, karate):
        """BS(A) bound must dominate the actual max number of targets that are
        inner nodes of one PISP path."""
        targets = [0, 1, 2, 3, 5, 8, 13, 21]
        tree = build_block_cut_tree(karate)
        bound = bs_bound(tree, targets, seed=3)
        space = PersonalizedISP(karate, targets=targets)
        target_set = set(targets)
        actual = 0
        for path, _ in space.enumerate_paths():
            inner_targets = sum(1 for node in path[1:-1] if node in target_set)
            actual = max(actual, inner_targets)
        assert bound >= actual

    def test_empty_intersection_gives_zero(self, two_triangles_shared_node):
        tree = build_block_cut_tree(two_triangles_shared_node)
        assert bs_bound(tree, [1], included_blocks=[], seed=1) == 0


class TestPersonalizedVc:
    def test_smaller_subsets_never_larger_bound(self, karate):
        tree = build_block_cut_tree(karate)
        small = personalized_vc_dimension(tree, [0, 1], seed=1)
        large = personalized_vc_dimension(tree, list(karate.nodes()), seed=1)
        assert small <= large

    def test_non_negative(self, karate):
        tree = build_block_cut_tree(karate)
        assert personalized_vc_dimension(tree, [5], seed=1) >= 0


class TestReport:
    def test_report_orderings(self, karate):
        """Table I's message: VC_subset <= VC_full <= VC_RK (up to estimate
        noise the orderings of the underlying quantities must hold)."""
        tree = build_block_cut_tree(karate)
        report = vc_bound_report(karate, tree, [0, 1, 2, 3], seed=2)
        assert report.max_block_diameter <= report.vertex_diameter
        assert report.bicomponent_vc <= report.riondato_vc
        assert report.personalized_vc <= report.bicomponent_vc
        assert report.bs_value <= 4

    def test_report_as_dict(self, karate):
        tree = build_block_cut_tree(karate)
        report = vc_bound_report(karate, tree, [0, 1], seed=2)
        data = report.as_dict()
        assert set(data) == {
            "VD(V)",
            "BD(V)",
            "BS(A)",
            "VC Riondato et al.",
            "VC SaPHyRa (full)",
            "VC SaPHyRa (subset)",
        }

    def test_road_like_graph_gains(self):
        """On a long path (road-like), the block diameter is 1 while the graph
        diameter is huge — the bi-component VC bound collapses to 0."""
        graph = path_graph(200)
        tree = build_block_cut_tree(graph)
        report = vc_bound_report(graph, tree, [50, 100, 150], seed=1)
        assert report.vertex_diameter >= 199
        assert report.max_block_diameter == 1
        assert report.riondato_vc >= 7
        assert report.bicomponent_vc == 0
        assert report.personalized_vc == 0
