"""Property tests: the dict and CSR backends are interchangeable.

The CSR kernels are not merely statistically equivalent to the dict
reference — they are *bit-identical*: same distances, same shortest-path
counts, same float dependencies (accumulated in the same order), same dict
key order, and the same sampled paths from the same seeds.  These tests
assert that contract on randomized generator graphs, so any divergence
introduced by a future kernel optimisation fails loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import ABRA, KADABRA, RiondatoKornaropoulos
from repro.centrality.brandes import (
    betweenness_centrality,
    betweenness_from_pivots,
    single_source_dependencies,
)
from repro.centrality.closeness import closeness_centrality
from repro.datasets import random_subset
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_road_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, shortest_path_dag
from repro.saphyra_bc import SaPHyRaBC
from repro.saphyra_cc.algorithm import SaPHyRaCC
from repro.saphyra_cc.problem import ClosenessProblem

GRAPH_CASES = [
    pytest.param(lambda seed: erdos_renyi_graph(60, 0.08, seed=seed), id="erdos-renyi"),
    pytest.param(lambda seed: barabasi_albert_graph(120, 3, seed=seed), id="barabasi-albert"),
    pytest.param(lambda seed: watts_strogatz_graph(90, 4, 0.1, seed=seed), id="watts-strogatz"),
    pytest.param(lambda seed: grid_road_graph(8, 9, seed=seed)[0], id="grid-road"),
]
SEEDS = (0, 1, 2)


def _random_pairs(graph: Graph, count: int, seed: int):
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestTraversalEquivalence:
    def test_bfs_identical_including_order(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:4]:
            reference = bfs_distances(graph, source, backend="dict")
            candidate = bfs_distances(graph, source, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    def test_bfs_max_depth(self, make_graph, seed):
        graph = make_graph(seed)
        source = next(iter(graph.nodes()))
        for depth in (0, 1, 3):
            reference = bfs_distances(graph, source, max_depth=depth, backend="dict")
            candidate = bfs_distances(graph, source, max_depth=depth, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    def test_shortest_path_dag_identical(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:3]:
            reference = shortest_path_dag(graph, source, backend="dict")
            candidate = shortest_path_dag(graph, source, backend="csr")
            assert reference.distances == candidate.distances
            assert reference.sigma == candidate.sigma
            assert reference.order == candidate.order
            assert reference.predecessors == candidate.predecessors

    def test_sampled_dag_paths_identical(self, make_graph, seed):
        graph = make_graph(seed)
        nodes = list(graph.nodes())
        source = nodes[0]
        reference = shortest_path_dag(graph, source, backend="dict")
        candidate = shortest_path_dag(graph, source, backend="csr")
        for target in nodes[-5:]:
            if target == source or target not in reference.distances:
                continue
            for draw in range(3):
                assert reference.sample_path(
                    target, random.Random(draw)
                ) == candidate.sample_path(target, random.Random(draw))


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestCentralityEquivalence:
    def test_single_source_dependencies_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:3]:
            reference = single_source_dependencies(graph, source, backend="dict")
            candidate = single_source_dependencies(graph, source, backend="csr")
            assert list(reference) == list(candidate)
            # Bitwise float equality, not approx: the CSR backward pass
            # replays the exact accumulation order.
            assert reference == candidate

    def test_betweenness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        assert betweenness_centrality(graph, backend="dict") == (
            betweenness_centrality(graph, backend="csr")
        )

    def test_pivot_betweenness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        pivots = random_subset(graph, 7, seed)
        assert betweenness_from_pivots(graph, pivots, backend="dict") == (
            betweenness_from_pivots(graph, pivots, backend="csr")
        )

    def test_closeness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        assert closeness_centrality(graph, backend="dict") == (
            closeness_centrality(graph, backend="csr")
        )


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestBidirectionalEquivalence:
    def test_results_and_sampled_paths(self, make_graph, seed):
        graph = make_graph(seed)
        for source, target in _random_pairs(graph, 12, seed + 100):
            reference = bidirectional_shortest_paths(
                graph, source, target, backend="dict"
            )
            candidate = bidirectional_shortest_paths(
                graph, source, target, backend="csr"
            )
            assert reference.distance == candidate.distance
            assert reference.num_shortest_paths == candidate.num_shortest_paths
            assert reference.cut_level == candidate.cut_level
            assert reference.cut_nodes == candidate.cut_nodes
            assert reference.visited_edges == candidate.visited_edges
            if reference.connected:
                for draw in range(3):
                    assert reference.sample_path(
                        random.Random(draw)
                    ) == candidate.sample_path(random.Random(draw))


class TestEstimatorEquivalence:
    """Full estimator runs draw identical samples and scores per backend."""

    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(200, 3, seed=2)

    @pytest.fixture(scope="class")
    def targets(self, graph):
        return random_subset(graph, 20, 4)

    def _pair(self, factory):
        first = factory("dict")
        second = factory("csr")
        return first, second

    def test_rk(self, graph):
        reference, candidate = self._pair(
            lambda backend: RiondatoKornaropoulos(
                0.1, 0.1, seed=7, max_samples_cap=150, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.num_samples == candidate.num_samples

    def test_kadabra(self, graph):
        reference, candidate = self._pair(
            lambda backend: KADABRA(
                0.1, 0.1, seed=7, max_samples_cap=150, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.converged_by == candidate.converged_by

    def test_abra(self, graph):
        reference, candidate = self._pair(
            lambda backend: ABRA(
                0.1, 0.1, seed=7, max_samples_cap=100, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.num_samples == candidate.num_samples

    def test_saphyra_bc(self, graph, targets):
        reference, candidate = self._pair(
            lambda backend: SaPHyRaBC(
                0.1, 0.1, seed=7, max_samples_cap=300, backend=backend
            ).rank(graph, targets)
        )
        assert reference.scores == candidate.scores
        assert reference.ranking == candidate.ranking
        assert reference.num_samples == candidate.num_samples

    def test_saphyra_cc(self, graph, targets):
        reference, candidate = self._pair(
            lambda backend: SaPHyRaCC(
                0.1, 0.1, seed=7, max_samples_cap=300, backend=backend
            ).rank(graph, targets)
        )
        assert reference.closeness == candidate.closeness
        assert reference.ranking == candidate.ranking

    def test_closeness_problem_losses(self, graph, targets):
        first = ClosenessProblem(graph, targets, seed=3, backend="dict")
        second = ClosenessProblem(graph, targets, seed=3, backend="csr")
        exact_first = first.exact_evaluation()
        exact_second = second.exact_evaluation()
        assert exact_first.risks == exact_second.risks
        assert exact_first.lambda_exact == exact_second.lambda_exact
        for draw in range(5):
            assert first.sample_losses(random.Random(draw)) == (
                second.sample_losses(random.Random(draw))
            )


class TestBigSigmaExactness:
    """Path counts beyond int64 stay exact (regression: on road-style grids
    sigma grows binomially and exceeded 2**63 around hop distance 70, which
    used to wrap the CSR backend's counts and break path sampling)."""

    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_graph(100, 100, seed=1)[0]

    def test_dag_sigma_beyond_int64(self, grid):
        source = next(iter(grid.nodes()))
        reference = shortest_path_dag(grid, source, backend="dict")
        candidate = shortest_path_dag(grid, source, backend="csr")
        assert max(reference.sigma.values()) > 2**63  # the test bites
        assert reference.sigma == candidate.sigma

    def test_bidirectional_long_pair(self, grid):
        nodes = list(grid.nodes())
        rng = random.Random(1)
        checked = 0
        for source, target in (tuple(rng.sample(nodes, 2)) for _ in range(20)):
            reference = bidirectional_shortest_paths(
                grid, source, target, backend="dict"
            )
            if not reference.connected or reference.distance < 60:
                continue
            candidate = bidirectional_shortest_paths(
                grid, source, target, backend="csr"
            )
            assert reference.num_shortest_paths == candidate.num_shortest_paths
            assert reference.cut_nodes == candidate.cut_nodes
            assert reference.sample_path(random.Random(2)) == (
                candidate.sample_path(random.Random(2))
            )
            checked += 1
        assert checked > 0  # at least one long pair exercised the guard


class TestSubgraphDeterminism:
    """Satellite fix: ``Graph.subgraph`` preserves the caller's node order."""

    def test_subgraph_preserves_argument_order(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([3, 1, 2])
        assert list(sub.nodes()) == [3, 1, 2]

    def test_subgraph_ignores_unknown_and_duplicates(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        sub = graph.subgraph([2, 99, 0, 2])
        assert list(sub.nodes()) == [2, 0]
        assert sub.number_of_edges() == 0

    def test_subgraph_identical_across_runs(self):
        # The old set-based implementation made node order depend on hash
        # randomisation; the ordered rebuild must be stable run to run.
        graph = Graph.from_edges([("x", "y"), ("y", "z"), ("z", "x")])
        orders = {tuple(graph.subgraph(["z", "x"]).nodes()) for _ in range(10)}
        assert orders == {("z", "x")}
