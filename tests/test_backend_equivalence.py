"""Property tests: the dict and CSR backends are interchangeable.

The CSR kernels are not merely statistically equivalent to the dict
reference — they are *bit-identical*: same distances, same shortest-path
counts, same float dependencies (accumulated in the same order), same dict
key order, and the same sampled paths from the same seeds.  These tests
assert that contract on randomized generator graphs, so any divergence
introduced by a future kernel optimisation fails loudly.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import ABRA, KADABRA, RiondatoKornaropoulos
from repro.centrality.brandes import (
    betweenness_centrality,
    betweenness_from_pivots,
    single_source_dependencies,
)
from repro.centrality.closeness import closeness_centrality
from repro.datasets import random_subset
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_road_graph,
    watts_strogatz_graph,
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, shortest_path_dag
from repro.saphyra_bc import SaPHyRaBC
from repro.saphyra_cc.algorithm import SaPHyRaCC
from repro.saphyra_cc.problem import ClosenessProblem

GRAPH_CASES = [
    pytest.param(lambda seed: erdos_renyi_graph(60, 0.08, seed=seed), id="erdos-renyi"),
    pytest.param(lambda seed: barabasi_albert_graph(120, 3, seed=seed), id="barabasi-albert"),
    pytest.param(lambda seed: watts_strogatz_graph(90, 4, 0.1, seed=seed), id="watts-strogatz"),
    pytest.param(lambda seed: grid_road_graph(8, 9, seed=seed)[0], id="grid-road"),
]
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def overflow_grid():
    """A road-style grid whose sigma counts cross ``2**63`` (hop dist ~70)."""
    return grid_road_graph(100, 100, seed=1)[0]


def _random_pairs(graph: Graph, count: int, seed: int):
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestTraversalEquivalence:
    def test_bfs_identical_including_order(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:4]:
            reference = bfs_distances(graph, source, backend="dict")
            candidate = bfs_distances(graph, source, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    def test_bfs_max_depth(self, make_graph, seed):
        graph = make_graph(seed)
        source = next(iter(graph.nodes()))
        for depth in (0, 1, 3):
            reference = bfs_distances(graph, source, max_depth=depth, backend="dict")
            candidate = bfs_distances(graph, source, max_depth=depth, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    def test_shortest_path_dag_identical(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:3]:
            reference = shortest_path_dag(graph, source, backend="dict")
            candidate = shortest_path_dag(graph, source, backend="csr")
            assert reference.distances == candidate.distances
            assert reference.sigma == candidate.sigma
            assert reference.order == candidate.order
            assert reference.predecessors == candidate.predecessors

    def test_sampled_dag_paths_identical(self, make_graph, seed):
        graph = make_graph(seed)
        nodes = list(graph.nodes())
        source = nodes[0]
        reference = shortest_path_dag(graph, source, backend="dict")
        candidate = shortest_path_dag(graph, source, backend="csr")
        for target in nodes[-5:]:
            if target == source or target not in reference.distances:
                continue
            for draw in range(3):
                assert reference.sample_path(
                    target, random.Random(draw)
                ) == candidate.sample_path(target, random.Random(draw))


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestCentralityEquivalence:
    def test_single_source_dependencies_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        for source in list(graph.nodes())[:3]:
            reference = single_source_dependencies(graph, source, backend="dict")
            candidate = single_source_dependencies(graph, source, backend="csr")
            assert list(reference) == list(candidate)
            # Bitwise float equality, not approx: the CSR backward pass
            # replays the exact accumulation order.
            assert reference == candidate

    def test_betweenness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        assert betweenness_centrality(graph, backend="dict") == (
            betweenness_centrality(graph, backend="csr")
        )

    def test_pivot_betweenness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        pivots = random_subset(graph, 7, seed)
        assert betweenness_from_pivots(graph, pivots, backend="dict") == (
            betweenness_from_pivots(graph, pivots, backend="csr")
        )

    def test_closeness_bitwise(self, make_graph, seed):
        graph = make_graph(seed)
        assert closeness_centrality(graph, backend="dict") == (
            closeness_centrality(graph, backend="csr")
        )


@pytest.mark.parametrize("make_graph", GRAPH_CASES)
@pytest.mark.parametrize("seed", SEEDS)
class TestBidirectionalEquivalence:
    def test_results_and_sampled_paths(self, make_graph, seed):
        graph = make_graph(seed)
        for source, target in _random_pairs(graph, 12, seed + 100):
            reference = bidirectional_shortest_paths(
                graph, source, target, backend="dict"
            )
            candidate = bidirectional_shortest_paths(
                graph, source, target, backend="csr"
            )
            assert reference.distance == candidate.distance
            assert reference.num_shortest_paths == candidate.num_shortest_paths
            assert reference.cut_level == candidate.cut_level
            assert reference.cut_nodes == candidate.cut_nodes
            assert reference.visited_edges == candidate.visited_edges
            if reference.connected:
                for draw in range(3):
                    assert reference.sample_path(
                        random.Random(draw)
                    ) == candidate.sample_path(random.Random(draw))


class TestEstimatorEquivalence:
    """Full estimator runs draw identical samples and scores per backend."""

    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(200, 3, seed=2)

    @pytest.fixture(scope="class")
    def targets(self, graph):
        return random_subset(graph, 20, 4)

    def _pair(self, factory):
        first = factory("dict")
        second = factory("csr")
        return first, second

    def test_rk(self, graph):
        reference, candidate = self._pair(
            lambda backend: RiondatoKornaropoulos(
                0.1, 0.1, seed=7, max_samples_cap=150, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.num_samples == candidate.num_samples

    def test_kadabra(self, graph):
        reference, candidate = self._pair(
            lambda backend: KADABRA(
                0.1, 0.1, seed=7, max_samples_cap=150, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.converged_by == candidate.converged_by

    def test_abra(self, graph):
        reference, candidate = self._pair(
            lambda backend: ABRA(
                0.1, 0.1, seed=7, max_samples_cap=100, backend=backend
            ).estimate(graph)
        )
        assert reference.scores == candidate.scores
        assert reference.num_samples == candidate.num_samples

    def test_saphyra_bc(self, graph, targets):
        reference, candidate = self._pair(
            lambda backend: SaPHyRaBC(
                0.1, 0.1, seed=7, max_samples_cap=300, backend=backend
            ).rank(graph, targets)
        )
        assert reference.scores == candidate.scores
        assert reference.ranking == candidate.ranking
        assert reference.num_samples == candidate.num_samples

    def test_saphyra_cc(self, graph, targets):
        reference, candidate = self._pair(
            lambda backend: SaPHyRaCC(
                0.1, 0.1, seed=7, max_samples_cap=300, backend=backend
            ).rank(graph, targets)
        )
        assert reference.closeness == candidate.closeness
        assert reference.ranking == candidate.ranking

    def test_closeness_problem_losses(self, graph, targets):
        first = ClosenessProblem(graph, targets, seed=3, backend="dict")
        second = ClosenessProblem(graph, targets, seed=3, backend="csr")
        exact_first = first.exact_evaluation()
        exact_second = second.exact_evaluation()
        assert exact_first.risks == exact_second.risks
        assert exact_first.lambda_exact == exact_second.lambda_exact
        for draw in range(5):
            assert first.sample_losses(random.Random(draw)) == (
                second.sample_losses(random.Random(draw))
            )


class TestBigSigmaExactness:
    """Path counts beyond int64 stay exact (regression: on road-style grids
    sigma grows binomially and exceeded 2**63 around hop distance 70, which
    used to wrap the CSR backend's counts and break path sampling)."""

    def test_dag_sigma_beyond_int64(self, overflow_grid):
        grid = overflow_grid
        source = next(iter(grid.nodes()))
        reference = shortest_path_dag(grid, source, backend="dict")
        candidate = shortest_path_dag(grid, source, backend="csr")
        assert max(reference.sigma.values()) > 2**63  # the test bites
        assert reference.sigma == candidate.sigma

    def test_bidirectional_long_pair(self, overflow_grid):
        grid = overflow_grid
        nodes = list(grid.nodes())
        rng = random.Random(1)
        checked = 0
        for source, target in (tuple(rng.sample(nodes, 2)) for _ in range(20)):
            reference = bidirectional_shortest_paths(
                grid, source, target, backend="dict"
            )
            if not reference.connected or reference.distance < 60:
                continue
            candidate = bidirectional_shortest_paths(
                grid, source, target, backend="csr"
            )
            assert reference.num_shortest_paths == candidate.num_shortest_paths
            assert reference.cut_nodes == candidate.cut_nodes
            assert reference.sample_path(random.Random(2)) == (
                candidate.sample_path(random.Random(2))
            )
            checked += 1
        assert checked > 0  # at least one long pair exercised the guard


class TestBatchedSweepEquivalence:
    """The batched multi-source sweep is bit-identical to the per-source
    kernels and to the dict reference — including on a road-style grid whose
    sigma counts cross the int64-overflow boundary (hop distance >= 70)."""

    @pytest.fixture(scope="class")
    def social(self):
        return barabasi_albert_graph(400, 3, seed=5)

    def _sources(self, graph, count):
        nodes = list(graph.nodes())
        step = max(1, len(nodes) // count)
        return nodes[::step][:count]

    def test_sigma_sweep_crosses_overflow_boundary(self, overflow_grid):
        from repro.graphs import csr as csr_module

        grid = overflow_grid
        snapshot = csr_module.as_csr(grid)
        sources = self._sources(grid, 3)
        indices = [snapshot.index_of(node) for node in sources]
        rows = csr_module.multi_source_sweep(
            snapshot, indices, kind=csr_module.SWEEP_SIGMA, batch_size=2
        )
        deep = False
        for source, (dist_row, sigma_row) in zip(sources, rows):
            reference = shortest_path_dag(grid, source, backend="dict")
            labels = snapshot.labels
            for index in range(snapshot.n):
                label = labels[index]
                assert int(dist_row[index]) == reference.distances.get(label, -1)
                assert int(sigma_row[index]) == reference.sigma.get(label, 0)
            if max(reference.sigma.values()) > 2**63:
                deep = True
            assert max(reference.distances.values()) >= 70
        assert deep  # the overflow guard actually tripped

    def test_brandes_sweep_bitwise(self, overflow_grid, social):
        from repro.graphs import csr as csr_module

        for graph in (overflow_grid, social):
            snapshot = csr_module.as_csr(graph)
            sources = self._sources(graph, 4)
            indices = [snapshot.index_of(node) for node in sources]
            rows = csr_module.multi_source_sweep(
                snapshot, indices, kind=csr_module.SWEEP_BRANDES, batch_size=3
            )
            for source, index, row in zip(sources, indices, rows):
                per_source, _, _ = csr_module.csr_brandes(snapshot, index)
                assert list(row) == list(per_source)
                reference = single_source_dependencies(
                    graph, source, backend="dict"
                )
                labels = snapshot.labels
                for node in range(snapshot.n):
                    if node == index:
                        continue
                    assert row[node] == reference.get(labels[node], 0.0)

    def test_distance_sweep_bitwise(self, overflow_grid):
        from repro.graphs import csr as csr_module

        snapshot = csr_module.as_csr(overflow_grid)
        sources = self._sources(overflow_grid, 5)
        indices = [snapshot.index_of(node) for node in sources]
        rows = csr_module.multi_source_sweep(
            snapshot, indices, kind=csr_module.SWEEP_DISTANCE, batch_size=2
        )
        for index, row in zip(indices, rows):
            dist, _ = csr_module.csr_bfs(snapshot, index)
            assert list(row) == list(dist)


class TestWorkerPoolEquivalence:
    """`workers > 1` is bit-identical to serial, which is bit-identical to
    the dict reference — on a social-style BA graph and on a road-style grid
    crossing the sigma overflow boundary."""

    @pytest.fixture(scope="class")
    def social(self):
        return barabasi_albert_graph(300, 3, seed=6)

    @pytest.fixture(scope="class")
    def road(self):
        # Small enough for dict-backend Brandes, deep enough for thin
        # frontiers; the 100x100 overflow grid is covered by the sweep tests.
        return grid_road_graph(16, 16, seed=3)[0]

    def test_exact_brandes_workers_bitwise(self, social, road):
        for graph in (social, road):
            reference = betweenness_centrality(graph, backend="dict")
            for backend in ("dict", "csr"):
                for workers in (0, 2):
                    candidate = betweenness_centrality(
                        graph, backend=backend, workers=workers
                    )
                    assert candidate == reference

    def test_closeness_workers_bitwise(self, social, road):
        for graph in (social, road):
            reference = closeness_centrality(graph, backend="dict")
            for backend in ("dict", "csr"):
                for workers in (0, 2):
                    candidate = closeness_centrality(
                        graph, backend=backend, workers=workers
                    )
                    assert candidate == reference

    def test_pivot_betweenness_workers_bitwise(self, social):
        pivots = random_subset(social, 7, 1)
        reference = betweenness_from_pivots(social, pivots, backend="dict")
        assert reference == betweenness_from_pivots(
            social, pivots, backend="csr", workers=2
        )

    def test_samplers_workers_bitwise(self, social):
        for cls, cap in (
            (RiondatoKornaropoulos, 150),
            (KADABRA, 150),
            (ABRA, 100),
        ):
            runs = {
                workers: cls(
                    0.1, 0.1, seed=7, max_samples_cap=cap, workers=workers
                ).estimate(social)
                for workers in (0, 1, 2)
            }
            assert runs[0].scores == runs[1].scores == runs[2].scores
            assert runs[0].num_samples == runs[2].num_samples
            assert runs[0].converged_by == runs[2].converged_by

    def test_samplers_workers_bitwise_across_backends(self, social):
        reference = RiondatoKornaropoulos(
            0.1, 0.1, seed=7, max_samples_cap=120, backend="dict"
        ).estimate(social)
        candidate = RiondatoKornaropoulos(
            0.1, 0.1, seed=7, max_samples_cap=120, backend="csr", workers=2
        ).estimate(social)
        assert reference.scores == candidate.scores

    def test_saphyra_variants_workers_bitwise(self, social):
        # High-degree targets sit in the middle of many length-2 paths, so
        # the exact-subspace rejection path of Gen_bc is actually exercised.
        targets = sorted(social.nodes(), key=social.degree, reverse=True)[:12]
        bc_runs = [
            SaPHyRaBC(
                0.1, 0.1, seed=7, max_samples_cap=300, workers=workers
            ).rank(social, targets)
            for workers in (0, 2)
        ]
        assert bc_runs[0].scores == bc_runs[1].scores
        assert bc_runs[0].ranking == bc_runs[1].ranking
        assert bc_runs[0].num_samples == bc_runs[1].num_samples
        # Diagnostics are covered by the contract too: worker-local Gen_bc
        # counters are snapshotted per chunk and folded back in the master.
        assert bc_runs[0].rejections == bc_runs[1].rejections
        assert bc_runs[0].rejections > 0  # the check bites
        cc_runs = [
            SaPHyRaCC(
                0.1, 0.1, seed=7, max_samples_cap=300, workers=workers
            ).rank(social, targets)
            for workers in (0, 2)
        ]
        assert cc_runs[0].closeness == cc_runs[1].closeness
        assert cc_runs[0].ranking == cc_runs[1].ranking


class TestDAGCacheEquivalence:
    """The cross-sample source-DAG cache never changes results: cached runs
    are bit-identical to uncached runs, to dict-backend runs, and to
    ``workers > 1`` runs (each worker process keeps its own cache)."""

    @pytest.fixture(scope="class")
    def social(self):
        return barabasi_albert_graph(250, 3, seed=8)

    @pytest.fixture()
    def cache_toggle(self):
        from repro.engine import set_dag_cache_enabled

        yield set_dag_cache_enabled
        set_dag_cache_enabled(None)

    def _cache_matrix(self, cache_toggle, run):
        from repro.engine import clear_default_dag_cache, default_dag_cache

        results = {}
        for enabled in (False, True):
            cache_toggle(enabled)
            clear_default_dag_cache()
            results[enabled] = run()
            if enabled:
                stats = default_dag_cache().stats()
                assert stats["misses"] > 0  # the cache was actually consulted
        return results

    def test_rk_cached_vs_uncached_vs_workers(self, social, cache_toggle):
        def run(workers=0, backend="csr"):
            return RiondatoKornaropoulos(
                0.1, 0.1, seed=7, max_samples_cap=150,
                backend=backend, workers=workers,
            ).estimate(social)

        results = self._cache_matrix(cache_toggle, run)
        assert results[False].scores == results[True].scores
        cache_toggle(True)
        assert run(workers=2).scores == results[True].scores
        assert run(backend="dict").scores == results[True].scores

    def test_abra_cached_vs_uncached_vs_workers(self, social, cache_toggle):
        def run(workers=0, backend="csr"):
            return ABRA(
                0.1, 0.1, seed=7, max_samples_cap=100,
                backend=backend, workers=workers,
            ).estimate(social)

        results = self._cache_matrix(cache_toggle, run)
        assert results[False].scores == results[True].scores
        assert results[False].num_samples == results[True].num_samples
        cache_toggle(True)
        assert run(workers=2).scores == results[True].scores
        assert run(backend="dict").scores == results[True].scores

    def test_closeness_problem_cached_vs_uncached(self, social, cache_toggle):
        targets = random_subset(social, 12, 3)

        def run():
            problem = ClosenessProblem(social, targets, seed=3, backend="csr")
            exact = problem.exact_evaluation()
            losses = [
                problem.sample_losses(random.Random(draw)) for draw in range(5)
            ]
            return exact.risks, exact.lambda_exact, losses

        results = self._cache_matrix(cache_toggle, run)
        assert results[False] == results[True]

    def test_saphyra_cc_cached_vs_uncached_vs_workers(self, social, cache_toggle):
        targets = random_subset(social, 10, 5)

        def run(workers=0):
            return SaPHyRaCC(
                0.1, 0.1, seed=7, max_samples_cap=200, workers=workers
            ).rank(social, targets)

        results = self._cache_matrix(cache_toggle, run)
        assert results[False].closeness == results[True].closeness
        assert results[False].ranking == results[True].ranking
        cache_toggle(True)
        assert run(workers=2).closeness == results[True].closeness

    def test_repeated_rank_hits_the_cache(self, social, cache_toggle):
        from repro.engine import clear_default_dag_cache, default_dag_cache

        cache_toggle(True)
        clear_default_dag_cache()
        targets = random_subset(social, 8, 6)
        first = SaPHyRaCC(0.1, 0.1, seed=7, max_samples_cap=100).rank(
            social, targets
        )
        hits_before = default_dag_cache().hits
        second = SaPHyRaCC(0.1, 0.1, seed=7, max_samples_cap=100).rank(
            social, targets
        )
        assert default_dag_cache().hits > hits_before  # target sweep reused
        assert first.closeness == second.closeness


class TestSharedMemoryEquivalence:
    """The zero-copy shared-memory CSR handoff never changes results: with
    the handoff on, `workers > 1` runs (under `spawn`, which actually ships
    payloads through pickling and therefore exports blocks) are bit-identical
    to pickle-payload runs, to the serial path, and to the dict reference —
    and every exported block is unlinked when the pools shut down."""

    pytestmark = pytest.mark.skipif(
        not __import__("repro.parallel", fromlist=["x"]).shared_memory_available(),
        reason="numpy/shared_memory unavailable",
    )

    @pytest.fixture(scope="class")
    def social(self):
        return barabasi_albert_graph(300, 3, seed=6)

    @pytest.fixture()
    def shm_toggle(self, monkeypatch):
        from repro.parallel import set_shared_memory_enabled

        # spawn so payloads are actually pickled (fork inherits memory and
        # would exercise the in-process resolution only).
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        yield set_shared_memory_enabled
        set_shared_memory_enabled(None)

    def _no_leaked_blocks(self):
        from repro import parallel

        assert parallel._active_shared_blocks == set()

    def test_exact_brandes_shared_vs_pickle_vs_serial(self, social, shm_toggle):
        reference = betweenness_centrality(social, backend="dict")
        serial = betweenness_centrality(social, backend="csr", workers=0)
        shm_toggle(True)
        shared = betweenness_centrality(social, backend="csr", workers=2)
        shm_toggle(False)
        pickled = betweenness_centrality(social, backend="csr", workers=2)
        assert shared == pickled == serial == reference
        self._no_leaked_blocks()

    def test_closeness_shared_vs_pickle_vs_serial(self, social, shm_toggle):
        reference = closeness_centrality(social, backend="dict")
        serial = closeness_centrality(social, backend="csr", workers=0)
        shm_toggle(True)
        shared = closeness_centrality(social, backend="csr", workers=2)
        shm_toggle(False)
        pickled = closeness_centrality(social, backend="csr", workers=2)
        assert shared == pickled == serial == reference
        self._no_leaked_blocks()

    def test_samplers_shared_vs_pickle_vs_serial(self, social, shm_toggle):
        for cls, cap in (
            (RiondatoKornaropoulos, 120),
            (KADABRA, 120),
            (ABRA, 80),
        ):
            def run(workers):
                return cls(
                    0.1, 0.1, seed=7, max_samples_cap=cap,
                    backend="csr", workers=workers,
                ).estimate(social)

            serial = run(0)
            shm_toggle(True)
            shared = run(2)
            shm_toggle(False)
            pickled = run(2)
            assert shared.scores == pickled.scores == serial.scores
            assert shared.num_samples == pickled.num_samples == serial.num_samples
        self._no_leaked_blocks()

    def test_blocks_unlinked_after_exception_mid_sweep(self, social, shm_toggle):
        from repro import parallel
        from repro.engine.driver import sweep_sources
        from repro.centrality.closeness import _distance_stats_chunk

        shm_toggle(True)
        payload = parallel.shareable_graph(social, "csr")
        assert isinstance(payload, parallel.SharedCSRPayload)
        seen = {"chunks": 0}

        def fold(chunk, stats):
            seen["chunks"] += 1
            raise RuntimeError("mid-sweep failure")

        with pytest.raises(RuntimeError, match="mid-sweep failure"):
            sweep_sources(
                _distance_stats_chunk,
                list(social.nodes()),
                fold,
                payload=(payload, "csr", False),
                workers=2,
            )
        assert seen["chunks"] == 1
        assert payload.block_names() == []
        self._no_leaked_blocks()


class TestSubgraphDeterminism:
    """Satellite fix: ``Graph.subgraph`` preserves the caller's node order."""

    def test_subgraph_preserves_argument_order(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([3, 1, 2])
        assert list(sub.nodes()) == [3, 1, 2]

    def test_subgraph_ignores_unknown_and_duplicates(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        sub = graph.subgraph([2, 99, 0, 2])
        assert list(sub.nodes()) == [2, 0]
        assert sub.number_of_edges() == 0

    def test_subgraph_identical_across_runs(self):
        # The old set-based implementation made node order depend on hash
        # randomisation; the ordered rebuild must be stable run to run.
        graph = Graph.from_edges([("x", "y"), ("y", "z"), ("z", "x")])
        orders = {tuple(graph.subgraph(["z", "x"]).nodes()) for _ in range(10)}
        assert orders == {("z", "x")}


# ----------------------------------------------------------------------
# Weighted SSSP engine (PR 5)
# ----------------------------------------------------------------------
WEIGHTED_GRAPH_CASES = [
    pytest.param(
        lambda seed: weighted_barabasi_albert_graph(120, 3, seed=seed),
        id="weighted-ba",
    ),
    pytest.param(
        lambda seed: weighted_grid_road_graph(8, 9, seed=seed)[0],
        id="weighted-grid",
    ),
]


def _oracle_weighted_betweenness(graph):
    """Brute-force weighted betweenness oracle (unnormalised, ordered pairs).

    Independent of the Brandes backward pass: run one dict Dijkstra per
    source, then sum ``sigma_s(v) * sigma_v(t) / sigma_st`` over every pair
    with ``d_s(v) + d_v(t) = d_s(t)`` — the combinatorial definition.  The
    on-path test uses a relative tolerance: the two sides sum the same edge
    weights in different association orders, so exact float equality would
    spuriously reject true decompositions.  With continuous random weights
    real ties at the tolerance boundary have probability zero.
    """
    from repro.graphs.traversal import dict_dijkstra_dag

    nodes = list(graph.nodes())
    dags = {node: dict_dijkstra_dag(graph, node) for node in nodes}
    scores = {node: 0.0 for node in nodes}
    for s in nodes:
        ds = dags[s]
        for t in nodes:
            if t == s or t not in ds.distances:
                continue
            sigma_st = ds.sigma[t]
            d_st = ds.distances[t]
            for v in nodes:
                if v == s or v == t or v not in ds.distances:
                    continue
                dv = dags[v]
                if t not in dv.distances:
                    continue
                through = ds.distances[v] + dv.distances[t]
                if abs(through - d_st) <= 1e-9 * max(1.0, abs(d_st)):
                    scores[v] += ds.sigma[v] * dv.sigma[t] / sigma_st
    return scores


@pytest.mark.parametrize("make_graph", WEIGHTED_GRAPH_CASES)
@pytest.mark.parametrize("seed", (0, 1))
class TestWeightedTraversalEquivalence:
    """dict Dijkstra vs CSR Dijkstra: bit-identical DAGs and distances."""

    def test_weighted_dag_identical(self, make_graph, seed):
        graph = make_graph(seed)
        assert graph.is_weighted
        for source in list(graph.nodes())[:3]:
            reference = shortest_path_dag(graph, source, backend="dict")
            candidate = shortest_path_dag(graph, source, backend="csr")
            assert reference.weighted and candidate.weighted
            assert reference.distances == candidate.distances
            assert reference.sigma == candidate.sigma
            assert reference.order == candidate.order
            assert reference.predecessors == candidate.predecessors

    def test_weighted_distances_identical(self, make_graph, seed):
        from repro.graphs.traversal import sssp_distances

        graph = make_graph(seed)
        for source in list(graph.nodes())[:4]:
            reference = sssp_distances(graph, source, backend="dict")
            candidate = sssp_distances(graph, source, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    def test_weighted_sigma_sweep_matches_dags(self, make_graph, seed):
        from repro.graphs import csr as csr_module

        graph = make_graph(seed)
        snapshot = csr_module.as_csr(graph)
        sources = list(range(min(4, snapshot.n)))
        rows = csr_module.multi_source_sweep(
            snapshot, sources, kind=csr_module.SWEEP_SIGMA, weighted=True
        )
        for source, (dist_row, sigma_row) in zip(sources, rows):
            dag = csr_module.csr_dijkstra_dag(snapshot, source)
            assert list(dist_row) == list(dag.dist)
            assert list(sigma_row) == list(dag.sigma)

    def test_weighted_sampled_paths_identical(self, make_graph, seed):
        graph = make_graph(seed)
        nodes = list(graph.nodes())
        source = nodes[0]
        reference = shortest_path_dag(graph, source, backend="dict")
        candidate = shortest_path_dag(graph, source, backend="csr")
        for target in nodes[-4:]:
            if target == source or target not in reference.distances:
                continue
            for draw in range(3):
                assert reference.sample_path(
                    target, random.Random(draw)
                ) == candidate.sample_path(target, random.Random(draw))


@pytest.mark.parametrize("make_graph", WEIGHTED_GRAPH_CASES)
class TestWeightedCentralityEquivalence:
    """Weighted Brandes/closeness: dict == csr == workers>0, and both agree
    with an independent brute-force Dijkstra oracle."""

    def test_weighted_dependencies_identical(self, make_graph):
        graph = make_graph(3)
        for source in list(graph.nodes())[:3]:
            reference = single_source_dependencies(graph, source, backend="dict")
            candidate = single_source_dependencies(graph, source, backend="csr")
            assert reference == candidate

    def test_weighted_betweenness_backends_and_workers(self, make_graph):
        graph = make_graph(4)
        reference = betweenness_centrality(graph, backend="dict")
        assert betweenness_centrality(graph, backend="csr") == reference
        assert (
            betweenness_centrality(graph, backend="csr", workers=2) == reference
        )
        assert (
            betweenness_centrality(graph, backend="dict", workers=2) == reference
        )

    def test_weighted_closeness_backends_and_workers(self, make_graph):
        graph = make_graph(5)
        reference = closeness_centrality(graph, backend="dict")
        assert closeness_centrality(graph, backend="csr") == reference
        assert closeness_centrality(graph, backend="csr", workers=2) == reference

    def test_weighted_betweenness_matches_oracle(self, make_graph):
        graph = make_graph(6)
        if graph.number_of_nodes() > 60:
            graph = graph.subgraph(list(graph.nodes())[:60])
        oracle = _oracle_weighted_betweenness(graph)
        computed = betweenness_centrality(
            graph, backend="csr", normalized=False
        )
        assert set(oracle) == set(computed)
        for node, value in oracle.items():
            assert computed[node] == pytest.approx(value, abs=1e-9)

    def test_weighted_closeness_matches_oracle(self, make_graph):
        from repro.graphs.traversal import dict_dijkstra_dag

        graph = make_graph(7)
        n = graph.number_of_nodes()
        computed = closeness_centrality(graph, backend="csr")
        for node in list(graph.nodes())[:5]:
            distances = dict_dijkstra_dag(graph, node).distances
            reachable = len(distances)
            total = sum(distances[v] for v in distances if v != node)
            expected = 0.0
            if total > 0 and n > 1 and reachable > 1:
                expected = (reachable - 1) / total * (reachable - 1) / (n - 1)
            assert computed[node] == pytest.approx(expected, rel=1e-12)


class TestWeightedEstimatorEquivalence:
    """ABRA/RK/KADABRA/Bader on weighted graphs: dict == csr == workers>0,
    cache on == cache off, and the Dijkstra DAGs actually flow through the
    weighted cache keys."""

    @pytest.fixture(scope="class")
    def weighted_social(self):
        return weighted_barabasi_albert_graph(150, 3, seed=9)

    @pytest.mark.parametrize("estimator_cls", [ABRA, KADABRA, RiondatoKornaropoulos])
    def test_weighted_sampler_backends_and_workers(
        self, estimator_cls, weighted_social
    ):
        def run(backend, workers):
            return estimator_cls(
                0.3, 0.1, seed=13, backend=backend, workers=workers,
                max_samples_cap=300,
            ).estimate(weighted_social)

        reference = run("dict", 0)
        for backend, workers in (("csr", 0), ("csr", 2), ("dict", 2)):
            result = run(backend, workers)
            assert result.scores == reference.scores
            assert result.num_samples == reference.num_samples
            assert result.extra["weighted"] == 1.0

    def test_weighted_bader_backends(self, weighted_social):
        from repro.baselines.bader import BaderPivot

        def run(backend, workers):
            return BaderPivot(
                0.3, 0.1, seed=13, backend=backend, workers=workers,
                num_pivots=24,
            ).estimate(weighted_social)

        reference = run("dict", 0)
        assert run("csr", 0).scores == reference.scores
        assert run("csr", 2).scores == reference.scores

    def test_weighted_cache_on_off_identical_and_exercised(self, weighted_social):
        from repro.engine import dag_cache as dag_cache_module
        from repro.engine.dag_cache import SourceDAGCache

        def run():
            return RiondatoKornaropoulos(
                0.3, 0.1, seed=21, backend="csr", max_samples_cap=300
            ).estimate(weighted_social)

        dag_cache_module.set_dag_cache_enabled(False)
        try:
            uncached = run()
        finally:
            dag_cache_module.set_dag_cache_enabled(None)
        dag_cache_module.clear_default_dag_cache()
        dag_cache_module.set_dag_cache_enabled(True)
        try:
            cached = run()
            stats = dag_cache_module.default_dag_cache().stats()
        finally:
            dag_cache_module.set_dag_cache_enabled(None)
            dag_cache_module.clear_default_dag_cache()
        assert cached.scores == uncached.scores
        assert stats["misses"] > 0  # the weighted keys were actually used

        # Weighted and unweighted traversals of the same source must land on
        # distinct cache keys.
        cache = SourceDAGCache(max_entries=8)
        source = next(iter(weighted_social.nodes()))
        weighted_dag = cache.dag(
            weighted_social, source, backend="csr", weighted=True
        )
        hop_dag = cache.dag(
            weighted_social, source, backend="csr", weighted=False
        )
        assert weighted_dag is not hop_dag
        assert cache.misses == 2 and cache.hits == 0


class TestUnitWeightAB:
    """Unit-weight graphs: ``weighted=auto`` must take the exact BFS path,
    and the forced-on Dijkstra engine must reproduce BFS distances."""

    @pytest.fixture(scope="class")
    def unit_social(self):
        return barabasi_albert_graph(150, 3, seed=9)

    def test_auto_is_bfs_dag_bit_for_bit(self, unit_social):
        source = next(iter(unit_social.nodes()))
        for backend in ("dict", "csr"):
            auto = shortest_path_dag(
                unit_social, source, backend=backend, weighted="auto"
            )
            off = shortest_path_dag(
                unit_social, source, backend=backend, weighted="off"
            )
            assert auto == off
            assert auto.weighted is False
            assert all(isinstance(d, int) for d in auto.distances.values())

    def test_auto_reproduces_bfs_sampled_path_exactly(self, unit_social):
        nodes = list(unit_social.nodes())
        source, target = nodes[0], nodes[-1]
        auto = shortest_path_dag(unit_social, source, weighted="auto")
        off = shortest_path_dag(unit_social, source, weighted="off")
        for draw in range(5):
            assert auto.sample_path(target, random.Random(draw)) == off.sample_path(
                target, random.Random(draw)
            )

    def test_forced_on_matches_bfs_distances(self, unit_social):
        from repro.graphs.traversal import sssp_distances

        for backend in ("dict", "csr"):
            for source in list(unit_social.nodes())[:3]:
                hop = bfs_distances(unit_social, source, backend=backend)
                dijkstra = sssp_distances(
                    unit_social, source, backend=backend, weighted="on"
                )
                assert set(hop) == set(dijkstra)
                assert all(float(hop[k]) == dijkstra[k] for k in hop)

    @pytest.mark.parametrize("estimator_cls", [ABRA, KADABRA, RiondatoKornaropoulos])
    def test_auto_equals_off_for_samplers(self, estimator_cls, unit_social):
        def run(weighted):
            return estimator_cls(
                0.3, 0.1, seed=17, backend="csr", weighted=weighted,
                max_samples_cap=200,
            ).estimate(unit_social)

        auto = run("auto")
        off = run("off")
        assert auto.scores == off.scores
        assert auto.num_samples == off.num_samples

    def test_auto_equals_off_for_exact_centrality(self, unit_social):
        assert betweenness_centrality(
            unit_social, backend="csr", weighted="auto"
        ) == betweenness_centrality(unit_social, backend="csr", weighted="off")
        assert closeness_centrality(
            unit_social, backend="csr", weighted="auto"
        ) == closeness_centrality(unit_social, backend="csr", weighted="off")


class TestWeightedSharedMemory:
    """The weighted CSR snapshot (three blocks: indptr, indices, weights)
    rides the zero-copy handoff with bit-identical results and no leaks."""

    pytestmark = pytest.mark.skipif(
        not __import__("repro.parallel", fromlist=["x"]).shared_memory_available(),
        reason="numpy/shared_memory unavailable",
    )

    @pytest.fixture(scope="class")
    def weighted_social(self):
        return weighted_barabasi_albert_graph(200, 3, seed=6)

    @pytest.fixture()
    def shm_toggle(self, monkeypatch):
        from repro.parallel import set_shared_memory_enabled

        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        yield set_shared_memory_enabled
        set_shared_memory_enabled(None)

    def _no_leaked_blocks(self):
        from repro import parallel

        assert parallel._active_shared_blocks == set()

    def test_payload_roundtrip_carries_weights(self, weighted_social, shm_toggle):
        import pickle

        from repro import parallel
        from repro.graphs import csr as csr_module

        shm_toggle(True)
        payload = parallel.shareable_graph(weighted_social, "csr")
        assert isinstance(payload, parallel.SharedCSRPayload)
        try:
            snapshot = pickle.loads(pickle.dumps(payload))
            assert len(payload.block_names()) == 3  # indptr, indices, weights
            assert snapshot.is_weighted
            original = csr_module.as_csr(weighted_social)
            assert list(snapshot.weights) == list(original.weights)
            assert list(snapshot.indices) == list(original.indices)
        finally:
            payload.release()
        self._no_leaked_blocks()

    def test_weighted_brandes_shared_vs_pickle_vs_serial(
        self, weighted_social, shm_toggle
    ):
        reference = betweenness_centrality(weighted_social, backend="dict")
        serial = betweenness_centrality(weighted_social, backend="csr", workers=0)
        shm_toggle(True)
        shared = betweenness_centrality(weighted_social, backend="csr", workers=2)
        shm_toggle(False)
        pickled = betweenness_centrality(weighted_social, backend="csr", workers=2)
        assert shared == pickled == serial == reference
        self._no_leaked_blocks()

    def test_weighted_closeness_shared_vs_pickle_vs_serial(
        self, weighted_social, shm_toggle
    ):
        reference = closeness_centrality(weighted_social, backend="dict")
        serial = closeness_centrality(weighted_social, backend="csr", workers=0)
        shm_toggle(True)
        shared = closeness_centrality(weighted_social, backend="csr", workers=2)
        shm_toggle(False)
        pickled = closeness_centrality(weighted_social, backend="csr", workers=2)
        assert shared == pickled == serial == reference
        self._no_leaked_blocks()

    def test_weighted_sampler_shared_vs_pickle_vs_serial(
        self, weighted_social, shm_toggle
    ):
        def run(workers):
            return RiondatoKornaropoulos(
                0.3, 0.1, seed=23, backend="csr", workers=workers,
                max_samples_cap=200,
            ).estimate(weighted_social)

        serial = run(0)
        shm_toggle(True)
        shared = run(2)
        shm_toggle(False)
        pickled = run(2)
        assert shared.scores == pickled.scores == serial.scores
        self._no_leaked_blocks()


class TestWeightedPathCounts:
    """Regression: ``path_counts_to`` on Dijkstra DAGs must propagate in
    topological (reverse settle) order.  The BFS level walk is wrong when
    equal-length shortest paths have different hop counts — common with
    integer weights (DIMACS road lengths, integer edge-list columns)."""

    def _integer_weighted(self, seed):
        rng = random.Random(seed)
        base = barabasi_albert_graph(80, 3, seed=seed)
        graph = Graph()
        for u, v in base.edges():
            graph.add_edge(u, v, weight=rng.choice([1, 2, 3, 4]))
        return graph

    def test_hop_heterogeneous_tie_counted(self):
        # s-a(1), a-b(1), b-t(1), a-t(2): two shortest s->t paths of length
        # 3 with different hop counts (3 hops via b, 2 hops direct).
        from repro.graphs.traversal import dict_dijkstra_dag

        graph = Graph.from_edges(
            [("s", "a", 1.0), ("a", "b", 1.0), ("b", "t", 1.0), ("a", "t", 2.0)]
        )
        dag = dict_dijkstra_dag(graph, "s")
        assert dag.sigma["t"] == 2
        beta = dag.path_counts_to("t")
        assert beta == {"t": 1.0, "a": 2.0, "b": 1.0, "s": 2.0}

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_beta_source_equals_sigma_target(self, seed):
        # Invariant: the number of shortest source->target paths counted
        # backwards (beta[source]) equals the forward count sigma[target].
        from repro.graphs import csr as csr_module
        from repro.graphs.traversal import dict_dijkstra_dag

        graph = self._integer_weighted(seed)
        nodes = list(graph.nodes())
        source = nodes[0]
        dag = dict_dijkstra_dag(graph, source)
        snapshot = csr_module.as_csr(graph)
        cdag = csr_module.csr_dijkstra_dag(snapshot, snapshot.index[source])
        labels = snapshot.labels
        for target in nodes[1:12]:
            beta = dag.path_counts_to(target)
            assert beta[source] == float(dag.sigma[target])
            cbeta = cdag.path_counts_to(snapshot.index[target])
            assert {labels[i]: v for i, v in cbeta.items()} == beta

    def test_integer_weight_abra_backends_identical(self):
        graph = self._integer_weighted(5)
        results = [
            ABRA(
                0.3, 0.1, seed=7, backend=backend, max_samples_cap=200
            ).estimate(graph)
            for backend in ("dict", "csr")
        ]
        assert results[0].scores == results[1].scores


class TestWeightedCompareGroundTruth:
    """compare_estimators scores each estimator against the ground truth of
    its own estimand: weighted Brandes for the weighted-aware estimators,
    hop Brandes for SaPHyRa/ego (which sample hop-shortest paths)."""

    def test_per_engine_truth(self):
        from repro.analysis import compare_estimators

        graph = weighted_barabasi_albert_graph(120, 3, seed=8)
        targets = list(graph.nodes())[:12]
        rows = compare_estimators(
            graph, targets, epsilon=0.1, delta=0.1, seed=3,
            estimators=("saphyra", "bader"), max_samples_cap=3000,
        )
        by_name = {row.name: row for row in rows}
        # Both estimators are scored against the truth of their own
        # estimand, so neither reports the workload-mismatch "errors" the
        # single-truth implementation produced (hop vs weighted Spearman on
        # this graph is ~0.7; per-engine scoring keeps rankings coherent).
        assert by_name["saphyra"].spearman > 0.9
        # Bader pivots run weighted Brandes: with *all* nodes as pivots the
        # estimate is exact, so its error against the weighted truth (and
        # only the weighted truth) is ~0.
        from repro.baselines.bader import BaderPivot

        exact = BaderPivot(
            0.3, 0.1, seed=3, num_pivots=graph.number_of_nodes()
        ).estimate(graph)
        weighted_truth = betweenness_centrality(graph, weighted="on")
        hop_truth = betweenness_centrality(graph, weighted="off")
        weighted_err = max(
            abs(exact.scores[node] - weighted_truth[node]) for node in targets
        )
        hop_err = max(
            abs(exact.scores[node] - hop_truth[node]) for node in targets
        )
        assert weighted_err < 1e-12
        assert hop_err > 1e-3  # the two estimands genuinely differ here

    def test_unit_graph_single_truth_unchanged(self):
        from repro.analysis import compare_estimators

        graph = barabasi_albert_graph(120, 3, seed=8)
        targets = list(graph.nodes())[:12]
        rows = compare_estimators(
            graph, targets, epsilon=0.3, delta=0.1, seed=3,
            estimators=("rk",), max_samples_cap=300,
        )
        assert rows[0].spearman is not None


# ----------------------------------------------------------------------
# Weighted SSSP kernel knob (PR 6): delta-stepping == Dijkstra == dict
# ----------------------------------------------------------------------
def _integer_tie_graph(seed):
    """Integer weights => many equal-length shortest paths (heavy tie load)."""
    rng = random.Random(seed)
    base = barabasi_albert_graph(80, 3, seed=seed)
    graph = Graph()
    for u, v in base.edges():
        graph.add_edge(u, v, weight=rng.choice([1, 2, 3]))
    return graph


KERNEL_GRAPH_CASES = WEIGHTED_GRAPH_CASES + [
    pytest.param(lambda seed: _integer_tie_graph(seed), id="integer-ties"),
]


class TestSSSPKernelEquivalence:
    """The ``sssp_kernel`` knob never changes results — only speed.

    Delta-stepping settles distances by bucket-ordered label correction,
    then re-pins Dijkstra's settle order / predecessor order / sigma from
    the final distances, so every output (including sampled paths and
    worker/shared-memory runs) must be bit-identical across kernels and
    against the dict oracle.  Integer weights make equal-length shortest
    paths (and settle-order ties) common, exercising the tie-break
    reconstruction rather than the easy unique-path case.
    """

    @pytest.fixture()
    def kernel_toggle(self):
        from repro.graphs.sssp import set_default_sssp_kernel

        yield set_default_sssp_kernel
        set_default_sssp_kernel(None)

    @pytest.mark.parametrize("make_graph", KERNEL_GRAPH_CASES)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_dag_bit_identical_across_kernels(self, make_graph, seed, kernel_toggle):
        graph = make_graph(seed)
        oracle = shortest_path_dag(graph, list(graph.nodes())[0], backend="dict")
        dags = {}
        for kernel in ("dijkstra", "delta"):
            kernel_toggle(kernel)
            dags[kernel] = shortest_path_dag(
                graph, list(graph.nodes())[0], backend="csr"
            )
        for dag in dags.values():
            assert dag.distances == oracle.distances
            assert dag.sigma == oracle.sigma
            assert dag.order == oracle.order
            assert dag.predecessors == oracle.predecessors

    @pytest.mark.parametrize("make_graph", KERNEL_GRAPH_CASES)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_sampled_paths_identical_across_kernels(
        self, make_graph, seed, kernel_toggle
    ):
        graph = make_graph(seed)
        nodes = list(graph.nodes())
        source = nodes[0]
        reference = shortest_path_dag(graph, source, backend="dict")
        kernel_toggle("delta")
        candidate = shortest_path_dag(graph, source, backend="csr")
        for target in nodes[-4:]:
            if target == source or target not in reference.distances:
                continue
            for draw in range(3):
                assert reference.sample_path(
                    target, random.Random(draw)
                ) == candidate.sample_path(target, random.Random(draw))

    @pytest.mark.parametrize("make_graph", KERNEL_GRAPH_CASES)
    @pytest.mark.parametrize("kind", ("distance", "sigma", "brandes"))
    def test_sweeps_bit_identical_across_kernels(self, make_graph, kind):
        from repro.graphs import csr as csr_module

        graph = make_graph(0)
        snapshot = csr_module.as_csr(graph)
        sources = list(range(min(6, snapshot.n)))
        results = {
            kernel: csr_module.multi_source_sweep(
                snapshot, sources, kind=kind, weighted=True, sssp_kernel=kernel
            )
            for kernel in ("dijkstra", "delta")
        }
        for a, b in zip(results["dijkstra"], results["delta"]):
            if kind == "sigma":
                dist_a, sigma_a = a
                dist_b, sigma_b = b
                assert list(dist_a) == list(dist_b)
                assert list(sigma_a) == list(sigma_b)
            else:
                assert list(a) == list(b)

    @pytest.mark.parametrize("make_graph", KERNEL_GRAPH_CASES)
    def test_distances_with_order_identical(self, make_graph, kernel_toggle):
        from repro.graphs.traversal import sssp_distances

        graph = make_graph(0)
        source = list(graph.nodes())[0]
        reference = sssp_distances(graph, source, backend="dict")
        for kernel in ("dijkstra", "delta"):
            kernel_toggle(kernel)
            candidate = sssp_distances(graph, source, backend="csr")
            assert reference == candidate
            assert list(reference) == list(candidate)

    @pytest.mark.parametrize("workers", (0, 2))
    def test_centrality_workers_bitwise_across_kernels(
        self, workers, kernel_toggle
    ):
        graph = weighted_barabasi_albert_graph(120, 3, seed=6)
        reference = betweenness_centrality(graph, backend="dict")
        scores = {}
        for kernel in ("dijkstra", "delta"):
            kernel_toggle(kernel)
            scores[kernel] = betweenness_centrality(
                graph, backend="csr", workers=workers
            )
        assert scores["dijkstra"] == scores["delta"] == reference

    def test_shared_memory_on_off_bitwise_delta(self, kernel_toggle, monkeypatch):
        from repro import parallel

        if not parallel.shared_memory_available():
            pytest.skip("numpy/shared_memory unavailable")
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        graph = weighted_barabasi_albert_graph(150, 3, seed=6)
        reference = betweenness_centrality(graph, backend="dict")
        kernel_toggle("delta")
        try:
            parallel.set_shared_memory_enabled(True)
            shared = betweenness_centrality(graph, backend="csr", workers=2)
            parallel.set_shared_memory_enabled(False)
            pickled = betweenness_centrality(graph, backend="csr", workers=2)
        finally:
            parallel.set_shared_memory_enabled(None)
        assert shared == pickled == reference
        assert parallel._active_shared_blocks == set()

    def test_sampler_identical_across_kernels(self, kernel_toggle):
        graph = weighted_barabasi_albert_graph(150, 3, seed=9)
        results = {}
        for kernel in ("dijkstra", "delta"):
            kernel_toggle(kernel)
            results[kernel] = ABRA(
                0.3, 0.1, seed=11, backend="csr", max_samples_cap=200
            ).estimate(graph)
        assert results["dijkstra"].scores == results["delta"].scores
        assert results["dijkstra"].num_samples == results["delta"].num_samples
