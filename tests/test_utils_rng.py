"""Tests for repro.utils.rng."""

from __future__ import annotations

import random

import pytest

from repro.utils.rng import ensure_rng, shuffled, spawn_rngs


class TestEnsureRng:
    def test_none_returns_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_rng_passes_through(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng

    def test_bool_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)

    def test_string_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(ensure_rng(3), 5)
        assert len(children) == 5

    def test_children_are_deterministic(self):
        first = [rng.random() for rng in spawn_rngs(ensure_rng(3), 3)]
        second = [rng.random() for rng in spawn_rngs(ensure_rng(3), 3)]
        assert first == second

    def test_children_are_independent_streams(self):
        children = spawn_rngs(ensure_rng(3), 2)
        values_a = [children[0].random() for _ in range(3)]
        values_b = [children[1].random() for _ in range(3)]
        assert values_a != values_b

    def test_zero_children(self):
        assert spawn_rngs(ensure_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(ensure_rng(0), -1)


class TestShuffled:
    def test_preserves_elements(self):
        items = list(range(20))
        result = shuffled(items, ensure_rng(5))
        assert sorted(result) == items

    def test_does_not_mutate_input(self):
        items = list(range(10))
        copy = list(items)
        shuffled(items, ensure_rng(5))
        assert items == copy

    def test_deterministic_given_seed(self):
        assert shuffled(range(10), ensure_rng(9)) == shuffled(range(10), ensure_rng(9))
