"""Tests for experiment-result persistence (JSON / CSV round trips)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.figures import SubsetSizeRow
from repro.experiments.persistence import load_rows_json, save_rows_csv, save_rows_json
from repro.experiments.runner import EpsilonSweepRow


def make_rows():
    return [
        EpsilonSweepRow(
            dataset="flickr",
            algorithm="saphyra",
            epsilon=0.1,
            mean_time_seconds=0.5,
            mean_spearman=0.95,
            spearman_ci_low=0.9,
            spearman_ci_high=1.0,
            mean_samples=1200.0,
            num_subsets=3,
        ),
        EpsilonSweepRow(
            dataset="orkut",
            algorithm="kadabra",
            epsilon=0.05,
            mean_time_seconds=2.5,
            mean_spearman=0.4,
            spearman_ci_low=0.2,
            spearman_ci_high=0.6,
            mean_samples=8000.0,
            num_subsets=3,
        ),
    ]


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        rows = make_rows()
        path = tmp_path / "sweep.json"
        save_rows_json(rows, path)
        loaded = load_rows_json(path, EpsilonSweepRow)
        assert loaded == rows

    def test_json_is_readable(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_rows_json(make_rows(), path)
        payload = json.loads(path.read_text())
        assert payload[0]["dataset"] == "flickr"

    def test_extra_fields_ignored_on_load(self, tmp_path):
        path = tmp_path / "rows.json"
        payload = [
            {
                "dataset": "flickr",
                "algorithm": "saphyra",
                "subset_size": 10,
                "mean_spearman": 0.9,
                "spearman_ci_low": 0.8,
                "spearman_ci_high": 1.0,
                "unknown_field": 42,
            }
        ]
        path.write_text(json.dumps(payload))
        rows = load_rows_json(path, SubsetSizeRow)
        assert rows[0].subset_size == 10

    def test_non_dataclass_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_rows_json([{"not": "a dataclass"}], tmp_path / "bad.json")


class TestCsv:
    def test_csv_contents(self, tmp_path):
        path = tmp_path / "sweep.csv"
        save_rows_csv(make_rows(), path)
        with open(path, newline="") as handle:
            reader = list(csv.DictReader(handle))
        assert len(reader) == 2
        assert reader[0]["dataset"] == "flickr"
        assert float(reader[1]["epsilon"]) == 0.05

    def test_csv_column_subset(self, tmp_path):
        path = tmp_path / "sweep.csv"
        save_rows_csv(make_rows(), path, columns=["dataset", "epsilon"])
        header = path.read_text().splitlines()[0]
        assert header == "dataset,epsilon"

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_rows_csv([], path)
        assert path.read_text() == ""
