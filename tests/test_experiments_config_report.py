"""Tests for experiment configuration and text rendering."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series, render_table


class TestConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig.default()
        assert set(config.datasets) == {"flickr", "livejournal", "usa-road", "orkut"}
        assert config.delta == 0.01

    def test_smoke_preset_is_small(self):
        smoke = ExperimentConfig.smoke()
        default = ExperimentConfig.default()
        assert smoke.scale < default.scale
        assert smoke.num_subsets <= default.num_subsets

    def test_paper_preset_matches_paper_grid(self):
        paper = ExperimentConfig.paper()
        assert tuple(paper.epsilons) == (0.2, 0.1, 0.05, 0.02, 0.01)
        assert paper.subset_size == 100
        assert paper.delta == 0.01

    def test_epsilon_grid_sorted_descending(self):
        config = ExperimentConfig(epsilons=(0.05, 0.2, 0.1))
        assert config.epsilon_grid() == (0.2, 0.1, 0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0},
            {"subset_size": 1},
            {"num_subsets": 0},
            {"epsilons": ()},
            {"algorithms": ("abra", "mystery")},
            {"backend": "gpu"},
            {"start_method": "threads"},
            {"dag_cache_size": 0},
            {"dag_cache_budget": -5},
            {"dag_cache_size": True},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_knob_fields_accept_valid_values(self):
        config = ExperimentConfig(
            backend="csr",
            start_method="spawn",
            dag_cache_size=128,
            dag_cache_budget=1_000_000,
        )
        assert config.backend == "csr"
        assert config.start_method == "spawn"
        assert config.dag_cache_size == 128
        assert config.dag_cache_budget == 1_000_000

    def test_every_knob_env_var_has_a_config_field(self):
        # The knob protocol, from the other side: each REPRO_* executor
        # knob the lint audits must stay addressable per-experiment.
        for field_name in (
            "backend",
            "workers",
            "start_method",
            "dag_cache",
            "dag_cache_size",
            "dag_cache_budget",
            "shared_memory",
            "weighted",
            "sssp_kernel",
            "compiled",
        ):
            assert hasattr(ExperimentConfig(), field_name)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "value"], [("a", 1.5), ("bbbb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "bbbb" in lines[3]
        # All rows have the same width.
        assert len(set(len(line) for line in lines)) <= 2

    def test_float_formatting(self):
        text = render_table(["x"], [(0.123456,), (1234567.0,), (float("nan"),)])
        assert "0.123" in text
        assert "nan" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderSeries:
    def test_merges_x_values(self):
        text = render_series(
            {"one": [(0.1, 1.0), (0.2, 2.0)], "two": [(0.1, 3.0)]},
            x_label="epsilon",
            y_label="time",
        )
        assert "epsilon" in text
        assert "one" in text and "two" in text
        assert "-" in text  # missing point for series "two" at x=0.2
