"""Tests for the SaPHyRa orchestrator (Algorithm 1) on enumerated problems."""

from __future__ import annotations

import pytest

from repro.core.estimation import ExactEvaluation
from repro.core.hypothesis import SetMembershipHypothesisClass
from repro.core.problem import EnumeratedProblem
from repro.core.sample_space import EnumeratedSampleSpace, WeightedSample
from repro.core.saphyra import SaPHyRa
from repro.metrics.rank_correlation import spearman_rank_correlation


def make_problem(num_items=40, exact_first=5, seed_names=("a", "b", "c", "d")):
    """A synthetic hypothesis-ranking problem with known risks.

    Samples are integers 0..num_items-1, uniform; hypothesis ``h_i`` fires on
    samples divisible by (i + 2), so the true risks are roughly 1/(i+2).
    """
    values = list(range(num_items))
    space = EnumeratedSampleSpace(
        [WeightedSample(value, 1.0 / num_items) for value in values],
        is_exact=lambda value: value < exact_first,
    )
    hypotheses = SetMembershipHypothesisClass(
        list(seed_names),
        keys_of=lambda value: [
            name
            for index, name in enumerate(seed_names)
            if value % (index + 2) == 0
        ],
    )
    return EnumeratedProblem(space, hypotheses)


class TestExactEvaluation:
    def test_exact_risks_match_enumeration(self):
        problem = make_problem()
        evaluation = problem.exact_evaluation()
        assert isinstance(evaluation, ExactEvaluation)
        assert evaluation.lambda_exact == pytest.approx(5 / 40)
        # Hypothesis "a" (divisible by 2) fires on samples 0, 2, 4 of the
        # exact subspace -> 3/40.
        assert evaluation.risks[0] == pytest.approx(3 / 40)

    def test_true_risks(self):
        problem = make_problem()
        truth = problem.true_risks()
        assert truth["a"] == pytest.approx(20 / 40)
        assert truth["b"] == pytest.approx(14 / 40)  # multiples of 3 below 40

    def test_vc_dimension_from_pi_max(self):
        problem = make_problem()
        # A sample divisible by 2, 3, 4 and 5 (e.g. 0) is exact; the largest
        # approximate-subspace sample fires at most 3 hypotheses (e.g. 12 ->
        # a, b, c), so the bound is floor(log2(3)) + 1 = 2.
        assert problem.vc_dimension() <= 3


class TestOrchestrator:
    def test_combined_estimates_within_epsilon(self):
        problem = make_problem()
        truth = problem.true_risks()
        result = SaPHyRa(epsilon=0.05, delta=0.05, seed=3).rank(problem)
        for name, risk in zip(result.names, result.risks):
            assert abs(risk - truth[name]) < 0.05

    def test_ranking_matches_truth_on_well_separated_risks(self):
        problem = make_problem()
        truth = problem.true_risks()
        result = SaPHyRa(epsilon=0.03, delta=0.05, seed=5).rank(problem)
        correlation = spearman_rank_correlation(truth, result.scores())
        assert correlation == pytest.approx(1.0)

    def test_combination_identity(self):
        """l_i = l-hat_i + lambda * l-tilde_i holds exactly in the output."""
        problem = make_problem()
        result = SaPHyRa(epsilon=0.1, delta=0.1, seed=7).rank(problem)
        for combined, exact, approx in zip(
            result.risks, result.exact_risks, result.approximate_risks
        ):
            assert combined == pytest.approx(
                exact + result.lambda_approximate * approx
            )

    def test_everything_exact_short_circuits(self):
        values = list(range(10))
        space = EnumeratedSampleSpace(
            [WeightedSample(value, 0.1) for value in values],
            is_exact=lambda value: True,
        )
        hypotheses = SetMembershipHypothesisClass(
            ["even"], keys_of=lambda value: ["even"] if value % 2 == 0 else []
        )
        problem = EnumeratedProblem(space, hypotheses)
        result = SaPHyRa(epsilon=0.05, delta=0.05, seed=1).rank(problem)
        assert result.converged_by == "exact"
        assert result.num_samples == 0
        assert result.risks[0] == pytest.approx(0.5)

    def test_result_metadata(self):
        problem = make_problem()
        result = SaPHyRa(epsilon=0.1, delta=0.1, seed=2).rank(problem)
        assert result.epsilon == 0.1
        assert result.lambda_exact + result.lambda_approximate == pytest.approx(1.0)
        assert result.epsilon_prime >= result.epsilon
        assert result.num_samples > 0
        assert set(result.ranking) == set(result.names)
        assert len(result) == 4
        assert "sampling" in result.stage_seconds

    def test_deterministic_given_seed(self):
        problem = make_problem()
        first = SaPHyRa(epsilon=0.1, delta=0.1, seed=42).rank(problem)
        second = SaPHyRa(epsilon=0.1, delta=0.1, seed=42).rank(make_problem())
        assert first.risks == second.risks
        assert first.ranking == second.ranking

    def test_invalid_epsilon_delta(self):
        with pytest.raises(ValueError):
            SaPHyRa(epsilon=0.0, delta=0.1)
        with pytest.raises(ValueError):
            SaPHyRa(epsilon=0.1, delta=1.0)

    def test_max_samples_cap(self):
        problem = make_problem()
        result = SaPHyRa(epsilon=0.02, delta=0.05, seed=1, max_samples_cap=128).rank(
            problem
        )
        assert result.num_samples <= 128


class TestVarianceReduction:
    def test_partitioning_reduces_samples_for_small_risks(self):
        """Claim 8: with the high-probability samples moved to the exact
        subspace, the sampler needs fewer samples to reach the same epsilon."""
        values = list(range(100))
        hypotheses = SetMembershipHypothesisClass(
            ["rare"], keys_of=lambda value: ["rare"] if value < 10 else []
        )
        # Partitioned: the 8 most frequent firing samples are exact.
        partitioned = EnumeratedProblem(
            EnumeratedSampleSpace(
                [WeightedSample(value, 0.01) for value in values],
                is_exact=lambda value: value < 8,
            ),
            hypotheses,
        )
        unpartitioned = EnumeratedProblem(
            EnumeratedSampleSpace(
                [WeightedSample(value, 0.01) for value in values],
                is_exact=lambda value: False,
            ),
            hypotheses,
        )
        partitioned_result = SaPHyRa(epsilon=0.02, delta=0.1, seed=3).rank(partitioned)
        unpartitioned_result = SaPHyRa(epsilon=0.02, delta=0.1, seed=3).rank(
            unpartitioned
        )
        truth = partitioned.true_risks()["rare"]
        assert abs(partitioned_result.scores()["rare"] - truth) < 0.02
        assert abs(unpartitioned_result.scores()["rare"] - truth) < 0.02
        assert partitioned_result.num_samples <= unpartitioned_result.num_samples
