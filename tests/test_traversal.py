"""Tests for BFS distances, shortest-path DAGs and path sampling."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import GraphError, SamplingError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    k_hop_neighborhood,
    sample_shortest_path,
    shortest_path_dag,
)


class TestBFSDistances:
    def test_path_graph_distances(self, path5):
        distances = bfs_distances(path5, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_depth(self, path5):
        distances = bfs_distances(path5, 0, max_depth=2)
        assert distances == {0: 0, 1: 1, 2: 2}

    def test_disconnected_nodes_absent(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        assert 2 not in bfs_distances(graph, 0)

    def test_missing_source_raises(self, path5):
        with pytest.raises(GraphError):
            bfs_distances(path5, 99)


class TestShortestPathDAG:
    def test_sigma_counts_on_cycle(self):
        # On an even cycle the antipodal node has exactly 2 shortest paths.
        graph = cycle_graph(6)
        dag = shortest_path_dag(graph, 0)
        assert dag.sigma[3] == 2
        assert dag.sigma[1] == 1

    def test_sigma_on_grid_like_square(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        dag = shortest_path_dag(graph, 0)
        assert dag.sigma[3] == 2
        assert sorted(dag.predecessors[3]) == [1, 2]

    def test_order_is_by_distance(self, karate):
        dag = shortest_path_dag(karate, 0)
        distances = [dag.distances[node] for node in dag.order]
        assert distances == sorted(distances)

    def test_number_of_shortest_paths_unreachable(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        dag = shortest_path_dag(graph, 0)
        assert dag.number_of_shortest_paths(2) == 0

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            shortest_path_dag(Graph(), 0)


class TestSamplePath:
    def test_path_validity(self, karate):
        rng = random.Random(1)
        for _ in range(20):
            nodes = list(karate.nodes())
            source, target = rng.sample(nodes, 2)
            path = sample_shortest_path(karate, source, target, rng)
            assert path[0] == source and path[-1] == target
            dag = shortest_path_dag(karate, source)
            assert len(path) - 1 == dag.distances[target]
            for u, v in zip(path, path[1:]):
                assert karate.has_edge(u, v)

    def test_unreachable_target_raises(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        with pytest.raises(SamplingError):
            sample_shortest_path(graph, 0, 2)

    def test_uniformity_on_square(self):
        # Two shortest paths 0-1-3 and 0-2-3; each should appear ~half the time.
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        rng = random.Random(7)
        dag = shortest_path_dag(graph, 0)
        counts = Counter(tuple(dag.sample_path(3, rng)) for _ in range(400))
        assert set(counts) == {(0, 1, 3), (0, 2, 3)}
        assert 120 < counts[(0, 1, 3)] < 280

    def test_uniformity_three_parallel_paths(self):
        graph = Graph.from_edges(
            [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]
        )
        rng = random.Random(3)
        dag = shortest_path_dag(graph, 0)
        counts = Counter(dag.sample_path(4, rng)[1] for _ in range(600))
        for middle in (1, 2, 3):
            assert 130 < counts[middle] < 270


class TestKHopNeighborhood:
    def test_zero_hops(self, karate):
        assert k_hop_neighborhood(karate, 0, 0) == [0]

    def test_one_hop_is_closed_neighborhood(self, karate):
        neighborhood = set(k_hop_neighborhood(karate, 0, 1))
        assert neighborhood == {0} | set(karate.neighbors(0))

    def test_negative_hops_rejected(self, karate):
        with pytest.raises(ValueError):
            k_hop_neighborhood(karate, 0, -1)

    def test_large_hops_cover_component(self, path5):
        assert sorted(k_hop_neighborhood(path5, 0, 10)) == [0, 1, 2, 3, 4]
