"""Tests for the ``repro lint`` invariant checker.

Covers the four required surfaces: per-rule fixture twins (each rule
fires on its seeded violation and stays quiet on the compliant twin),
suppression parsing, the JSON report schema, and the tree-wide "zero
unsuppressed findings" gate that keeps the repo itself honest.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    SourceFile,
    all_rule_ids,
    default_rules,
    iter_python_files,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.model import parse_suppression_comment
from repro.lint.rules import (
    EnvMirrorRule,
    FloatFoldRule,
    KernelOwnershipRule,
    KnobProtocolRule,
    RngDisciplineRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

KNOWN = set(all_rule_ids())


def _lint_fixture(rule, twin_dir):
    """Run one rule over one fixture twin directory."""
    report = run_lint([str(twin_dir)], rules=[rule])
    return report


# ----------------------------------------------------------------------
# Per-rule fixture twins
# ----------------------------------------------------------------------
RULE_FIXTURES = [
    ("float_fold", lambda: FloatFoldRule()),
    ("rng_discipline", lambda: RngDisciplineRule()),
    ("env_mirror", lambda: EnvMirrorRule()),
    ("kernel_ownership", lambda: KernelOwnershipRule()),
    # The fixture paths contain "tests" and "fixtures" components, which
    # the knob rule excludes by default — lift the exclusion here.
    ("knob_protocol", lambda: KnobProtocolRule(exclude_parts=())),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("name,factory", RULE_FIXTURES)
    def test_fires_on_violation(self, name, factory):
        rule = factory()
        report = _lint_fixture(rule, FIXTURES / name / "violation")
        assert report.findings, f"{rule.rule_id} missed its seeded violation"
        assert all(f.rule == rule.rule_id for f in report.findings)

    @pytest.mark.parametrize("name,factory", RULE_FIXTURES)
    def test_quiet_on_compliant(self, name, factory):
        rule = factory()
        report = _lint_fixture(rule, FIXTURES / name / "compliant")
        assert report.findings == [], [f.format() for f in report.findings]

    def test_float_fold_counts(self):
        report = _lint_fixture(FloatFoldRule(), FIXTURES / "float_fold" / "violation")
        # .sum(), np.sum, math.fsum, builtin sum — one finding each.
        assert len(report.findings) == 4

    def test_float_fold_compliant_suppression_is_recorded(self):
        report = _lint_fixture(FloatFoldRule(), FIXTURES / "float_fold" / "compliant")
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "float-fold"

    def test_env_mirror_flags_every_write_kind(self):
        report = _lint_fixture(EnvMirrorRule(), FIXTURES / "env_mirror" / "violation")
        # subscript assign, del, pop, update, putenv.
        assert len(report.findings) == 5

    def test_kernel_ownership_flags_import_loop_and_attribute(self):
        report = _lint_fixture(
            KernelOwnershipRule(), FIXTURES / "kernel_ownership" / "violation"
        )
        lines = sorted(f.line for f in report.findings)
        # private import, the while-frontier loop, and the attribute use.
        assert len(lines) == 3

    def test_knob_protocol_names_every_missing_surface(self):
        report = _lint_fixture(
            KnobProtocolRule(exclude_parts=()),
            FIXTURES / "knob_protocol" / "violation",
        )
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "REPRO_FROB" in message
        assert "set_default_frob" in message
        assert "--frob" in message
        assert "ExperimentConfig.frob" in message

    def test_float_fold_ignores_non_kernel_modules(self):
        source = SourceFile("pkg/analysis.py", "total = values.sum()\n", KNOWN)
        assert FloatFoldRule().check_file(source) == []


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------
class TestSuppressionParsing:
    @pytest.mark.parametrize(
        "comment",
        [
            "# repro-lint: disable=float-fold — audited reason",
            "# repro-lint: disable=float-fold -- audited reason",
            "# repro-lint: disable=float-fold: audited reason",
        ],
    )
    def test_separators(self, comment):
        suppression, bad = parse_suppression_comment("f.py", 3, comment, KNOWN)
        assert bad is None
        assert suppression.rules == ("float-fold",)
        assert suppression.reason == "audited reason"

    def test_multiple_rules(self):
        suppression, bad = parse_suppression_comment(
            "f.py", 1, "# repro-lint: disable=float-fold,rng-discipline — both", KNOWN
        )
        assert bad is None
        assert suppression.rules == ("float-fold", "rng-discipline")

    def test_ordinary_comment_is_ignored(self):
        suppression, bad = parse_suppression_comment("f.py", 1, "# just a note", KNOWN)
        assert suppression is None and bad is None

    @pytest.mark.parametrize(
        "comment,fragment",
        [
            ("# repro-lint: disable=float-fold", "reason"),
            ("# repro-lint: disable=float-fold — ", "reason"),
            ("# repro-lint: enable=float-fold — x", "malformed"),
            ("# repro-lint: disable=no-such-rule — x", "unknown rule"),
            ("# repro-lint: disable=bad-suppression — x", "cannot be suppressed"),
            ("# repro-lint: disable= — x", "no rule IDs"),
        ],
    )
    def test_malformed_suppressions(self, comment, fragment):
        suppression, bad = parse_suppression_comment("f.py", 2, comment, KNOWN)
        assert suppression is None
        assert bad is not None and bad.rule == "bad-suppression"
        assert fragment in bad.message

    def test_inline_suppression_covers_its_line(self):
        text = "total = data.sum()  # repro-lint: disable=float-fold — audited: ok\n"
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert len(findings) == 1
        assert source.is_suppressed(findings[0]) is not None

    def test_standalone_suppression_covers_next_line(self):
        text = (
            "# repro-lint: disable=float-fold — audited: ok\n"
            "total = data.sum()\n"
        )
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert len(findings) == 1
        assert source.is_suppressed(findings[0]) is not None

    def test_suppression_does_not_leak_to_other_lines(self):
        text = (
            "total = data.sum()  # repro-lint: disable=float-fold — audited: ok\n"
            "other = data.sum()\n"
        )
        source = SourceFile("graphs/csr.py", text, KNOWN)
        report_lines = {
            finding.line: source.is_suppressed(finding)
            for finding in FloatFoldRule().check_file(source)
        }
        assert report_lines[1] is not None
        assert report_lines[2] is None

    def test_suppression_only_covers_listed_rules(self):
        text = "total = data.sum()  # repro-lint: disable=rng-discipline — wrong rule\n"
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert source.is_suppressed(findings[0]) is None

    def test_bad_suppression_is_a_finding_and_unsuppressable(self):
        text = "x = 1  # repro-lint: disable=float-fold\n"
        source = SourceFile("f.py", text, KNOWN)
        assert len(source.meta_findings) == 1
        finding = source.meta_findings[0]
        assert finding.rule == "bad-suppression"
        assert source.is_suppressed(finding) is None

    def test_marker_inside_string_literal_is_ignored(self):
        text = 'doc = "# repro-lint: disable=float-fold"\n'
        source = SourceFile("f.py", text, KNOWN)
        assert source.meta_findings == []
        assert source.suppressions == {}


# ----------------------------------------------------------------------
# Engine, report schema, CLI
# ----------------------------------------------------------------------
class TestEngineAndReport:
    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_lint([str(bad)])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "parse-error"

    def test_missing_path_is_a_usage_error(self):
        from repro.lint import LintUsageError

        with pytest.raises(LintUsageError):
            iter_python_files(["no/such/path"])

    def test_walk_skips_fixture_directories(self, tmp_path):
        (tmp_path / "fixtures").mkdir()
        (tmp_path / "fixtures" / "seeded.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("y = 2\n")
        files = iter_python_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["real.py"]

    def test_explicit_file_path_is_always_linted(self):
        target = FIXTURES / "rng_discipline" / "violation" / "sampler.py"
        report = run_lint([str(target)], rules=[RngDisciplineRule()])
        assert report.findings

    def test_json_schema(self):
        report = run_lint(
            [str(FIXTURES / "float_fold" / "violation")], rules=[FloatFoldRule()]
        )
        payload = report.to_dict()
        assert payload["version"] == 1
        assert payload["summary"] == {
            "files": 1,
            "findings": len(report.findings),
            "suppressed": 0,
        }
        assert [rule["id"] for rule in payload["rules"]] == ["float-fold"]
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["line"], int)
            json.dumps(finding)  # every field is JSON-serialisable

    def test_findings_sorted_and_deterministic(self):
        paths = [str(FIXTURES / "env_mirror" / "violation")]
        first = run_lint(paths, rules=[EnvMirrorRule()])
        second = run_lint(paths, rules=[EnvMirrorRule()])
        keys = [f.sort_key() for f in first.findings]
        assert keys == sorted(keys)
        assert keys == [f.sort_key() for f in second.findings]

    def test_all_rule_ids_include_meta(self):
        ids = all_rule_ids()
        assert "parse-error" in ids and "bad-suppression" in ids
        for rule in default_rules():
            assert rule.rule_id in ids
            assert rule.description

    def test_finding_format(self):
        finding = Finding("float-fold", "a.py", 3, 7, "msg")
        assert finding.format() == "a.py:3:7: float-fold: msg"


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        code = lint_main([str(FIXTURES / "float_fold" / "compliant")])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 suppressed" in out

    def test_exit_one_on_findings(self, capsys):
        code = lint_main([str(FIXTURES / "float_fold" / "violation")])
        assert code == 1
        out = capsys.readouterr().out
        assert "float-fold" in out

    def test_exit_two_on_bad_path(self, capsys):
        code = lint_main(["no/such/path"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_output(self, capsys):
        code = lint_main(
            ["--format", "json", str(FIXTURES / "rng_discipline" / "violation")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"])
        assert {f["rule"] for f in payload["findings"]} == {"rng-discipline"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out

    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(["lint", str(FIXTURES / "float_fold" / "compliant")])
        assert code == 0

    def test_module_entry_point(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(FIXTURES / "knob_protocol" / "violation"),
            ],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        # The knob rule excludes these paths by default, but the meta
        # pass still runs — what matters here is the entry point works
        # and exits by the findings contract.
        assert result.returncode in (0, 1)
        assert "file(s) checked" in result.stdout


# ----------------------------------------------------------------------
# The repo gates on itself
# ----------------------------------------------------------------------
class TestTreeWideGate:
    def test_zero_unsuppressed_findings(self):
        report = run_lint(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )

    def test_every_tree_suppression_carries_a_reason(self):
        # The parser enforces this (a reasonless marker is a
        # bad-suppression finding), so a clean gate implies reasons
        # exist; assert the suppressed set is non-empty and audited to
        # keep the contract visible.
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.findings == []
        assert report.suppressed, "expected the audited float-fold/kernel sites"
