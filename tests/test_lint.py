"""Tests for the ``repro lint`` invariant checker.

Covers the four required surfaces: per-rule fixture twins (each rule
fires on its seeded violation and stays quiet on the compliant twin),
suppression parsing, the JSON report schema, and the tree-wide "zero
unsuppressed findings" gate that keeps the repo itself honest.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    SourceFile,
    all_rule_ids,
    default_rules,
    iter_python_files,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.model import parse_suppression_comment
from repro.lint.rules import (
    CacheVersionKeyRule,
    EnvMirrorRule,
    FloatFoldRule,
    JournalHookRule,
    KernelOwnershipRule,
    KnobFlowRule,
    KnobProtocolRule,
    RngDisciplineRule,
    SuppressionStaleRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

KNOWN = set(all_rule_ids())


def _lint_fixture(rules, twin_dir):
    """Run one or more rules over one fixture twin directory."""
    if not isinstance(rules, (list, tuple)):
        rules = [rules]
    report = run_lint([str(twin_dir)], rules=list(rules))
    return report


# ----------------------------------------------------------------------
# Per-rule fixture twins
# ----------------------------------------------------------------------
# Each entry: (fixture dir, rule whose findings are expected, the rule
# set to run — suppression-stale needs its partner rule active to judge
# which suppressions still absorb findings).  The fixture paths contain
# "tests" and "fixtures" components, which the project-scoped rules
# exclude by default — lift the exclusion here.
RULE_FIXTURES = [
    ("float_fold", "float-fold", lambda: [FloatFoldRule()]),
    ("rng_discipline", "rng-discipline", lambda: [RngDisciplineRule()]),
    ("env_mirror", "env-mirror", lambda: [EnvMirrorRule()]),
    ("kernel_ownership", "kernel-ownership", lambda: [KernelOwnershipRule()]),
    ("knob_protocol", "knob-protocol", lambda: [KnobProtocolRule(exclude_parts=())]),
    ("knob_flow", "knob-flow", lambda: [KnobFlowRule(exclude_parts=())]),
    (
        "cache_version_key",
        "cache-version-key",
        lambda: [CacheVersionKeyRule(exclude_parts=())],
    ),
    ("journal_hook", "journal-hook", lambda: [JournalHookRule(exclude_parts=())]),
    (
        "suppression_stale",
        "suppression-stale",
        lambda: [FloatFoldRule(), SuppressionStaleRule()],
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("name,rule_id,factory", RULE_FIXTURES)
    def test_fires_on_violation(self, name, rule_id, factory):
        report = _lint_fixture(factory(), FIXTURES / name / "violation")
        assert report.findings, f"{rule_id} missed its seeded violation"
        assert all(f.rule == rule_id for f in report.findings)

    @pytest.mark.parametrize("name,rule_id,factory", RULE_FIXTURES)
    def test_quiet_on_compliant(self, name, rule_id, factory):
        report = _lint_fixture(factory(), FIXTURES / name / "compliant")
        assert report.findings == [], [f.format() for f in report.findings]

    def test_float_fold_counts(self):
        report = _lint_fixture(FloatFoldRule(), FIXTURES / "float_fold" / "violation")
        # .sum(), np.sum, math.fsum, builtin sum — one finding each.
        assert len(report.findings) == 4

    def test_float_fold_compliant_suppression_is_recorded(self):
        report = _lint_fixture(FloatFoldRule(), FIXTURES / "float_fold" / "compliant")
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "float-fold"

    def test_env_mirror_flags_every_write_kind(self):
        report = _lint_fixture(EnvMirrorRule(), FIXTURES / "env_mirror" / "violation")
        # subscript assign, del, pop, update, putenv.
        assert len(report.findings) == 5

    def test_kernel_ownership_flags_import_loop_and_attribute(self):
        report = _lint_fixture(
            KernelOwnershipRule(), FIXTURES / "kernel_ownership" / "violation"
        )
        lines = sorted(f.line for f in report.findings)
        # private import, the while-frontier loop, and the attribute use.
        assert len(lines) == 3

    def test_knob_protocol_names_every_missing_surface(self):
        report = _lint_fixture(
            KnobProtocolRule(exclude_parts=()),
            FIXTURES / "knob_protocol" / "violation",
        )
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "REPRO_FROB" in message
        assert "set_default_frob" in message
        assert "--frob" in message
        assert "ExperimentConfig.frob" in message

    def test_float_fold_ignores_non_kernel_modules(self):
        source = SourceFile("pkg/analysis.py", "total = values.sum()\n", KNOWN)
        assert FloatFoldRule().check_file(source) == []

    def test_knob_flow_names_caller_callee_and_knob(self):
        report = _lint_fixture(
            [KnobFlowRule(exclude_parts=())], FIXTURES / "knob_flow" / "violation"
        )
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "run_experiment()" in message
        assert "helper()" in message
        assert "forward frob=frob" in message

    def test_cache_version_key_flags_both_contract_halves(self):
        report = _lint_fixture(
            [CacheVersionKeyRule(exclude_parts=())],
            FIXTURES / "cache_version_key" / "violation",
        )
        messages = sorted(f.message for f in report.findings)
        # One unfenced Graph-keyed store, one backend-less key tuple.
        assert len(messages) == 2
        assert "never reads ._version" in messages[0]
        assert "omits its 'backend' parameter" in messages[1]

    def test_journal_hook_flags_each_protocol_miss(self):
        report = _lint_fixture(
            [JournalHookRule(exclude_parts=())],
            FIXTURES / "journal_hook" / "violation",
        )
        messages = [f.message for f in sorted(report.findings, key=Finding.sort_key)]
        # add_edge misses both halves, remove_edge only the journal,
        # sneak_edge mutates a foreign ._adj.
        assert len(messages) == 3
        assert "bump self._version" in messages[0]
        assert "bump self._version" not in messages[1]
        assert "self._journal.record" in messages[1]
        assert "another object's ._adj" in messages[2]

    def test_suppression_stale_quotes_the_audited_reason(self):
        report = _lint_fixture(
            [FloatFoldRule(), SuppressionStaleRule()],
            FIXTURES / "suppression_stale" / "violation",
        )
        assert len(report.findings) == 1
        assert "order-pinned float fold" in report.findings[0].message

    def test_suppression_stale_skips_rules_that_did_not_run(self):
        # Without float-fold active nothing judges the suppression, so
        # staleness must not be inferred.
        report = _lint_fixture(
            [SuppressionStaleRule()], FIXTURES / "suppression_stale" / "violation"
        )
        assert report.findings == []

    def test_live_suppression_is_recorded_not_stale(self):
        report = _lint_fixture(
            [FloatFoldRule(), SuppressionStaleRule()],
            FIXTURES / "suppression_stale" / "compliant",
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["float-fold"]


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------
class TestSuppressionParsing:
    @pytest.mark.parametrize(
        "comment",
        [
            "# repro-lint: disable=float-fold — audited reason",
            "# repro-lint: disable=float-fold -- audited reason",
            "# repro-lint: disable=float-fold: audited reason",
        ],
    )
    def test_separators(self, comment):
        suppression, bad = parse_suppression_comment("f.py", 3, comment, KNOWN)
        assert bad is None
        assert suppression.rules == ("float-fold",)
        assert suppression.reason == "audited reason"

    def test_multiple_rules(self):
        suppression, bad = parse_suppression_comment(
            "f.py", 1, "# repro-lint: disable=float-fold,rng-discipline — both", KNOWN
        )
        assert bad is None
        assert suppression.rules == ("float-fold", "rng-discipline")

    def test_ordinary_comment_is_ignored(self):
        suppression, bad = parse_suppression_comment("f.py", 1, "# just a note", KNOWN)
        assert suppression is None and bad is None

    @pytest.mark.parametrize(
        "comment,fragment",
        [
            ("# repro-lint: disable=float-fold", "reason"),
            ("# repro-lint: disable=float-fold — ", "reason"),
            ("# repro-lint: enable=float-fold — x", "malformed"),
            ("# repro-lint: disable=no-such-rule — x", "unknown rule"),
            ("# repro-lint: disable=bad-suppression — x", "cannot be suppressed"),
            ("# repro-lint: disable= — x", "no rule IDs"),
        ],
    )
    def test_malformed_suppressions(self, comment, fragment):
        suppression, bad = parse_suppression_comment("f.py", 2, comment, KNOWN)
        assert suppression is None
        assert bad is not None and bad.rule == "bad-suppression"
        assert fragment in bad.message

    def test_inline_suppression_covers_its_line(self):
        text = "total = data.sum()  # repro-lint: disable=float-fold — audited: ok\n"
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert len(findings) == 1
        assert source.is_suppressed(findings[0]) is not None

    def test_standalone_suppression_covers_next_line(self):
        text = (
            "# repro-lint: disable=float-fold — audited: ok\n"
            "total = data.sum()\n"
        )
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert len(findings) == 1
        assert source.is_suppressed(findings[0]) is not None

    def test_suppression_does_not_leak_to_other_lines(self):
        text = (
            "total = data.sum()  # repro-lint: disable=float-fold — audited: ok\n"
            "other = data.sum()\n"
        )
        source = SourceFile("graphs/csr.py", text, KNOWN)
        report_lines = {
            finding.line: source.is_suppressed(finding)
            for finding in FloatFoldRule().check_file(source)
        }
        assert report_lines[1] is not None
        assert report_lines[2] is None

    def test_suppression_only_covers_listed_rules(self):
        text = "total = data.sum()  # repro-lint: disable=rng-discipline — wrong rule\n"
        source = SourceFile("graphs/csr.py", text, KNOWN)
        findings = FloatFoldRule().check_file(source)
        assert source.is_suppressed(findings[0]) is None

    def test_bad_suppression_is_a_finding_and_unsuppressable(self):
        text = "x = 1  # repro-lint: disable=float-fold\n"
        source = SourceFile("f.py", text, KNOWN)
        assert len(source.meta_findings) == 1
        finding = source.meta_findings[0]
        assert finding.rule == "bad-suppression"
        assert source.is_suppressed(finding) is None

    def test_marker_inside_string_literal_is_ignored(self):
        text = 'doc = "# repro-lint: disable=float-fold"\n'
        source = SourceFile("f.py", text, KNOWN)
        assert source.meta_findings == []
        assert source.suppressions == {}


# ----------------------------------------------------------------------
# Engine, report schema, CLI
# ----------------------------------------------------------------------
class TestEngineAndReport:
    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_lint([str(bad)])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "parse-error"

    def test_missing_path_is_a_usage_error(self):
        from repro.lint import LintUsageError

        with pytest.raises(LintUsageError):
            iter_python_files(["no/such/path"])

    def test_walk_skips_fixture_directories(self, tmp_path):
        (tmp_path / "fixtures").mkdir()
        (tmp_path / "fixtures" / "seeded.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("y = 2\n")
        files = iter_python_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["real.py"]

    def test_explicit_file_path_is_always_linted(self):
        target = FIXTURES / "rng_discipline" / "violation" / "sampler.py"
        report = run_lint([str(target)], rules=[RngDisciplineRule()])
        assert report.findings

    def test_json_schema(self):
        report = run_lint(
            [str(FIXTURES / "float_fold" / "violation")], rules=[FloatFoldRule()]
        )
        payload = report.to_dict()
        assert payload["version"] == 1
        summary = payload["summary"]
        assert set(summary) == {
            "files",
            "findings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "rule_timings",
        }
        assert summary["files"] == 1
        assert summary["findings"] == len(report.findings)
        assert summary["suppressed"] == 0
        assert summary["baselined"] == 0
        assert summary["stale_baseline"] == 0
        assert [rule["id"] for rule in payload["rules"]] == ["float-fold"]
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["line"], int)
            json.dumps(finding)  # every field is JSON-serialisable

    def test_json_summary_times_every_rule_that_ran(self):
        report = run_lint([str(FIXTURES / "float_fold" / "violation")])
        timings = report.to_dict()["summary"]["rule_timings"]
        assert set(timings) == {rule.rule_id for rule in default_rules()}
        assert all(
            isinstance(seconds, float) and seconds >= 0.0
            for seconds in timings.values()
        )

    def test_select_rules_filters_and_rejects_unknown(self):
        from repro.lint import LintUsageError, select_rules

        ids = [rule.rule_id for rule in select_rules(["float-fold", "knob-flow"])]
        assert ids == ["float-fold", "knob-flow"]
        assert len(select_rules(None)) == len(default_rules())
        with pytest.raises(LintUsageError, match="no-such-rule"):
            select_rules(["no-such-rule"])

    def test_filtered_run_keeps_foreign_suppressions_valid(self):
        # A --rules pass that skips float-fold must not reclassify the
        # fixture's float-fold suppression as an unknown-rule
        # bad-suppression.
        report = run_lint(
            [str(FIXTURES / "float_fold" / "compliant")],
            rules=[RngDisciplineRule()],
        )
        assert report.findings == []

    def test_findings_sorted_and_deterministic(self):
        paths = [str(FIXTURES / "env_mirror" / "violation")]
        first = run_lint(paths, rules=[EnvMirrorRule()])
        second = run_lint(paths, rules=[EnvMirrorRule()])
        keys = [f.sort_key() for f in first.findings]
        assert keys == sorted(keys)
        assert keys == [f.sort_key() for f in second.findings]

    def test_all_rule_ids_include_meta(self):
        ids = all_rule_ids()
        assert "parse-error" in ids and "bad-suppression" in ids
        for rule in default_rules():
            assert rule.rule_id in ids
            assert rule.description

    def test_finding_format(self):
        finding = Finding("float-fold", "a.py", 3, 7, "msg")
        assert finding.format() == "a.py:3:7: float-fold: msg"


# ----------------------------------------------------------------------
# The baseline ratchet
# ----------------------------------------------------------------------
class TestBaseline:
    def _violation_findings(self):
        report = run_lint(
            [str(FIXTURES / "float_fold" / "violation")], rules=[FloatFoldRule()]
        )
        return report.findings

    def test_roundtrip_baselines_known_findings(self, tmp_path):
        from repro.lint import load_baseline, save_baseline

        baseline_file = tmp_path / "baseline.json"
        save_baseline(str(baseline_file), self._violation_findings())
        entries = load_baseline(str(baseline_file))
        report = run_lint(
            [str(FIXTURES / "float_fold" / "violation")],
            rules=[FloatFoldRule()],
            baseline=entries,
        )
        assert report.findings == []
        assert len(report.baselined) == len(entries)
        assert report.stale_baseline == []

    def test_new_findings_are_not_absorbed(self):
        from repro.lint import finding_entry

        findings = self._violation_findings()
        entries = [finding_entry(f) for f in findings[:-1]]
        report = run_lint(
            [str(FIXTURES / "float_fold" / "violation")],
            rules=[FloatFoldRule()],
            baseline=entries,
        )
        assert len(report.findings) == 1
        assert not report.ok

    def test_fixed_findings_leave_stale_entries(self):
        from repro.lint import finding_entry

        entries = [finding_entry(f) for f in self._violation_findings()]
        report = run_lint(
            [str(FIXTURES / "float_fold" / "compliant")],
            rules=[FloatFoldRule()],
            baseline=entries,
        )
        assert report.findings == []
        assert len(report.stale_baseline) == len(entries)

    def test_matching_ignores_line_numbers(self):
        from repro.lint import finding_entry, partition_against_baseline

        finding = Finding("float-fold", "graphs/csr.py", 10, 4, "msg")
        moved = Finding("float-fold", "graphs/csr.py", 99, 0, "msg")
        new, baselined, stale = partition_against_baseline(
            [moved], [finding_entry(finding)]
        )
        assert new == [] and baselined == [moved] and stale == []

    def test_matching_is_multiset_aware(self):
        from repro.lint import finding_entry, partition_against_baseline

        finding = Finding("float-fold", "graphs/csr.py", 10, 4, "msg")
        twin = Finding("float-fold", "graphs/csr.py", 20, 4, "msg")
        # Two identical-keyed findings against one budgeted entry: one
        # absorbed, one new.
        new, baselined, stale = partition_against_baseline(
            [finding, twin], [finding_entry(finding)]
        )
        assert len(new) == 1 and len(baselined) == 1 and stale == []

    def test_load_rejects_malformed_files(self, tmp_path):
        from repro.lint import LintUsageError, load_baseline

        missing = tmp_path / "missing.json"
        with pytest.raises(LintUsageError, match="not found"):
            load_baseline(str(missing))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintUsageError, match="not valid JSON"):
            load_baseline(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"version": 2, "findings": []}))
        with pytest.raises(LintUsageError, match="version-1"):
            load_baseline(str(wrong))

    def test_committed_baseline_is_empty_and_loadable(self):
        from repro.lint import load_baseline

        assert load_baseline(str(REPO_ROOT / "lint-baseline.json")) == []


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        code = lint_main([str(FIXTURES / "float_fold" / "compliant")])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 suppressed" in out

    def test_exit_one_on_findings(self, capsys):
        code = lint_main([str(FIXTURES / "float_fold" / "violation")])
        assert code == 1
        out = capsys.readouterr().out
        assert "float-fold" in out

    def test_exit_two_on_bad_path(self, capsys):
        code = lint_main(["no/such/path"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_output(self, capsys):
        code = lint_main(
            ["--format", "json", str(FIXTURES / "rng_discipline" / "violation")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"])
        assert {f["rule"] for f in payload["findings"]} == {"rng-discipline"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out

    def test_rules_filter_runs_only_selected(self, capsys):
        code = lint_main(
            [
                "--rules",
                "rng-discipline",
                "--format",
                "json",
                str(FIXTURES / "float_fold" / "violation"),
            ]
        )
        assert code == 0  # the float-fold violations are not judged
        payload = json.loads(capsys.readouterr().out)
        assert [rule["id"] for rule in payload["rules"]] == ["rng-discipline"]
        assert set(payload["summary"]["rule_timings"]) == {"rng-discipline"}

    def test_unknown_rule_filter_is_a_usage_error(self, capsys):
        code = lint_main(["--rules", "no-such-rule", str(FIXTURES)])
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-rule" in err and "known rules" in err

    def test_baseline_flow(self, tmp_path, capsys):
        violation = str(FIXTURES / "float_fold" / "violation")
        compliant = str(FIXTURES / "float_fold" / "compliant")
        baseline = str(tmp_path / "baseline.json")
        # 1. Capture the known findings.
        assert lint_main(
            ["--rules", "float-fold", "--baseline", baseline, "--update-baseline",
             violation]
        ) == 0
        capsys.readouterr()
        # 2. Same tree + baseline: known findings pass, reported as baselined.
        code = lint_main(["--rules", "float-fold", "--baseline", baseline, violation])
        assert code == 0
        assert "baselined" in capsys.readouterr().out
        # 3. Fixed tree: entries are stale — fine by default, fatal with
        #    the ratchet flag.
        assert lint_main(
            ["--rules", "float-fold", "--baseline", baseline, compliant]
        ) == 0
        capsys.readouterr()
        code = lint_main(
            ["--rules", "float-fold", "--baseline", baseline,
             "--fail-on-stale-baseline", compliant]
        )
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_update_baseline_requires_a_file(self, capsys):
        code = lint_main(["--update-baseline", str(FIXTURES / "float_fold")])
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(["lint", str(FIXTURES / "float_fold" / "compliant")])
        assert code == 0

    def test_module_entry_point(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint",
                str(FIXTURES / "knob_protocol" / "violation"),
            ],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        # The knob rule excludes these paths by default, but the meta
        # pass still runs — what matters here is the entry point works
        # and exits by the findings contract.
        assert result.returncode in (0, 1)
        assert "file(s) checked" in result.stdout


# ----------------------------------------------------------------------
# The repo gates on itself
# ----------------------------------------------------------------------
class TestTreeWideGate:
    def test_zero_unsuppressed_findings(self):
        report = run_lint(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )

    def test_every_tree_suppression_carries_a_reason(self):
        # The parser enforces this (a reasonless marker is a
        # bad-suppression finding), so a clean gate implies reasons
        # exist; assert the suppressed set is non-empty and audited to
        # keep the contract visible.
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.findings == []
        assert report.suppressed, "expected the audited float-fold/kernel sites"
