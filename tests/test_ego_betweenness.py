"""Tests for the ego-betweenness heuristic baseline."""

from __future__ import annotations

import pytest

from repro.baselines.ego import EgoBetweenness, ego_betweenness
from repro.centrality.brandes import betweenness_centrality
from repro.errors import GraphError
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.metrics.rank_correlation import spearman_rank_correlation


class TestEgoBetweenness:
    def test_star_center_matches_exact(self, star6):
        # The centre's ego network is the whole star, so the heuristic is
        # exact for it.
        exact = betweenness_centrality(star6)
        assert ego_betweenness(star6, 0) == pytest.approx(exact[0])

    def test_leaf_is_zero(self, star6):
        assert ego_betweenness(star6, 3) == 0.0

    def test_complete_graph_all_zero(self):
        graph = complete_graph(5)
        assert all(ego_betweenness(graph, node) == 0.0 for node in graph.nodes())

    def test_path_inner_node(self):
        # For node 1 on the path 0-1-2-3 the ego network is 0-1-2, so only
        # the (0, 2) pair is seen: 2 ordered pairs / (4*3).
        graph = path_graph(4)
        assert ego_betweenness(graph, 1) == pytest.approx(2 / 12)

    def test_zero_exact_betweenness_implies_zero_ego(self, karate):
        # A node on no shortest path at all is on no ego-network shortest
        # path either (its neighbours are pairwise adjacent).
        exact = betweenness_centrality(karate)
        for node in karate.nodes():
            if exact[node] == 0.0:
                assert ego_betweenness(karate, node) == 0.0

    def test_unnormalized(self):
        graph = path_graph(4)
        assert ego_betweenness(graph, 1, normalized=False) == pytest.approx(2.0)

    def test_missing_node(self, karate):
        with pytest.raises(GraphError):
            ego_betweenness(karate, 999)


class TestEgoEstimator:
    def test_all_nodes(self, karate):
        result = EgoBetweenness().estimate(karate)
        assert set(result.scores) == set(karate.nodes())
        assert result.converged_by == "heuristic"
        assert result.num_samples == 0

    def test_subset_only(self, karate):
        result = EgoBetweenness(nodes=[0, 1, 2]).estimate(karate)
        assert set(result.scores) == {0, 1, 2}

    def test_ranking_correlates_but_not_guaranteed(self, karate):
        """The heuristic ranking is informative on the karate club but the
        values themselves systematically underestimate betweenness — the
        'no guarantee' behaviour the paper contrasts against."""
        exact = betweenness_centrality(karate)
        result = EgoBetweenness().estimate(karate)
        correlation = spearman_rank_correlation(exact, result.scores)
        assert correlation > 0.5
        worst_error = max(abs(exact[v] - result.scores[v]) for v in karate.nodes())
        assert worst_error > 0.05  # far outside any epsilon one would request

    def test_tiny_graph_rejected(self):
        with pytest.raises(GraphError):
            EgoBetweenness().estimate(Graph.from_edges([(0, 1)]))
