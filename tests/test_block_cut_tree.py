"""Tests for the block-cut tree, out-reach sets, gamma and bc_a."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.brandes import betweenness_centrality
from repro.errors import GraphError
from repro.graphs.block_cut_tree import build_block_cut_tree
from repro.graphs.components import largest_connected_component
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances


class TestConstruction:
    def test_requires_connected_graph(self):
        with pytest.raises(GraphError, match="connected"):
            build_block_cut_tree(Graph.from_edges([(0, 1), (2, 3)]))

    def test_requires_two_nodes(self):
        graph = Graph()
        graph.add_node(0)
        with pytest.raises(GraphError):
            build_block_cut_tree(graph)

    def test_single_block_graph(self, cycle6):
        tree = build_block_cut_tree(cycle6)
        assert tree.num_blocks == 1
        assert tree.gamma == pytest.approx(1.0)
        assert all(value == 0.0 for value in tree.bc_a.values())
        assert all(value == 1 for value in tree.out_reach[0].values())

    def test_block_subgraph_cached_and_correct(self, two_triangles_shared_node):
        tree = build_block_cut_tree(two_triangles_shared_node)
        sub = tree.block_subgraph(0)
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3
        assert tree.block_subgraph(0) is sub

    def test_out_reach_of_unknown_node_raises(self, cycle6):
        tree = build_block_cut_tree(cycle6)
        with pytest.raises(GraphError):
            tree.out_reach_of(0, 999)


class TestOutReach:
    def test_path_graph_out_reach(self):
        # Path 0-1-2-3: blocks {0,1},{1,2},{2,3}.
        graph = path_graph(4)
        tree = build_block_cut_tree(graph)
        for index in range(tree.num_blocks):
            nodes = tree.block_nodes(index)
            reach = tree.out_reach[index]
            assert sum(reach.values()) == 4  # Eq. 18
            low, high = sorted(nodes)
            # The out-reach of an endpoint counts everything on its side of
            # the bridge: nodes 0..low for the left end, high..3 for the right.
            assert reach[low] == low + 1
            assert reach[high] == 4 - high

    def test_two_triangles_out_reach(self, two_triangles_shared_node):
        tree = build_block_cut_tree(two_triangles_shared_node)
        n = 5
        for index in range(tree.num_blocks):
            reach = tree.out_reach[index]
            assert sum(reach.values()) == n
            # Cutpoint 0 reaches itself + the 2 nodes of the other triangle.
            assert reach[0] == 3

    def test_sum_rule_on_karate(self, karate):
        tree = build_block_cut_tree(karate)
        n = karate.number_of_nodes()
        for index in range(tree.num_blocks):
            assert sum(tree.out_reach[index].values()) == n

    def test_non_cutpoints_have_unit_reach(self, karate):
        tree = build_block_cut_tree(karate)
        cutpoints = tree.decomposition.cutpoints
        for index in range(tree.num_blocks):
            for node, value in tree.out_reach[index].items():
                if node not in cutpoints:
                    assert value == 1
                else:
                    assert value >= 1


class TestBranchSizes:
    def test_branches_partition_other_nodes(self, karate):
        tree = build_block_cut_tree(karate)
        n = karate.number_of_nodes()
        for cutpoint, branches in tree.branch_sizes.items():
            assert sum(branches.values()) == n - 1
            assert all(value >= 1 for value in branches.values())

    def test_branch_size_equals_n_minus_reach(self, barbell):
        tree = build_block_cut_tree(barbell)
        n = barbell.number_of_nodes()
        for cutpoint, branches in tree.branch_sizes.items():
            for block_index, size in branches.items():
                assert size == n - tree.out_reach[block_index][cutpoint]


class TestBcA:
    def test_non_cutpoints_zero(self, karate):
        tree = build_block_cut_tree(karate)
        for node in karate.nodes():
            if node not in tree.decomposition.cutpoints:
                assert tree.bc_a[node] == 0.0

    def test_path_middle_node(self):
        # Path 0-1-2: node 1 breaks every (0,2) shortest path; bc_a(1) equals
        # its full betweenness because the path pieces have no inner nodes.
        graph = path_graph(3)
        tree = build_block_cut_tree(graph)
        bc = betweenness_centrality(graph)
        assert tree.bc_a[1] == pytest.approx(bc[1])

    def test_star_center(self, star6):
        tree = build_block_cut_tree(star6)
        bc = betweenness_centrality(star6)
        assert tree.bc_a[0] == pytest.approx(bc[0])

    def test_bc_a_never_exceeds_bc(self, karate):
        tree = build_block_cut_tree(karate)
        bc = betweenness_centrality(karate)
        for node in karate.nodes():
            assert tree.bc_a[node] <= bc[node] + 1e-12


class TestGamma:
    def test_gamma_path(self):
        # Path on 3 nodes: two bridge blocks, weights 4 each, gamma = 8/6.
        tree = build_block_cut_tree(path_graph(3))
        assert tree.gamma == pytest.approx(8.0 / 6.0)

    def test_pair_weight_total_consistent(self, karate):
        tree = build_block_cut_tree(karate)
        n = karate.number_of_nodes()
        assert tree.pair_weight_total() == pytest.approx(tree.gamma * n * (n - 1))

    def test_block_pair_weights_positive(self, karate):
        tree = build_block_cut_tree(karate)
        assert all(weight > 0 for weight in tree.block_pair_weight)


class TestDistancePreservation:
    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_block_subgraph_preserves_distances(self, seed):
        """Shortest paths between nodes of a block stay inside the block, so
        distances within the block subgraph equal distances in the graph."""
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(5, 16), 0.3, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 3:
            return
        graph = graph.subgraph(component)
        tree = build_block_cut_tree(graph)
        for index in range(tree.num_blocks):
            block_nodes = tree.block_nodes(index)
            block_graph = tree.block_subgraph(index)
            source = block_nodes[0]
            full = bfs_distances(graph, source)
            restricted = bfs_distances(block_graph, source)
            for node in block_nodes:
                assert restricted[node] == full[node]
