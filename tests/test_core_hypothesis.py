"""Tests for hypothesis classes and losses."""

from __future__ import annotations

import pytest

from repro.core.hypothesis import (
    CallableHypothesisClass,
    SetMembershipHypothesisClass,
    zero_one_loss,
)


class TestZeroOneLoss:
    def test_equal(self):
        assert zero_one_loss(1.0, 1.0) == 0.0
        assert zero_one_loss(0.0, 0.0) == 0.0

    def test_different(self):
        assert zero_one_loss(1.0, 0.0) == 1.0
        assert zero_one_loss(0.0, 1.0) == 1.0


class TestCallableHypothesisClass:
    def make(self):
        return CallableHypothesisClass(
            {
                "even": lambda x: 1.0 if x % 2 == 0 else 0.0,
                "big": lambda x: 1.0 if x >= 5 else 0.0,
            }
        )

    def test_names_and_len(self):
        hypotheses = self.make()
        assert list(hypotheses.names) == ["even", "big"]
        assert len(hypotheses) == 2

    def test_losses_sparse(self):
        hypotheses = self.make()
        # Default labelling is constant 0 with 0-1 loss, so the loss equals
        # the prediction.
        assert hypotheses.losses(6) == {0: 1.0, 1: 1.0}
        assert hypotheses.losses(3) == {}
        assert hypotheses.losses(2) == {0: 1.0}

    def test_custom_labeling_and_loss(self):
        hypotheses = CallableHypothesisClass(
            {"h": lambda x: x},
            labeling=lambda x: 1.0,
            loss=lambda prediction, label: abs(prediction - label),
        )
        assert hypotheses.losses(0.25) == {0: 0.75}
        assert hypotheses.losses(1.0) == {}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CallableHypothesisClass({})


class TestSetMembershipHypothesisClass:
    def test_losses(self):
        hypotheses = SetMembershipHypothesisClass(
            ["a", "b", "c"], keys_of=lambda sample: sample
        )
        assert hypotheses.losses(["a", "c"]) == {0: 1.0, 2: 1.0}
        assert hypotheses.losses([]) == {}

    def test_unknown_keys_ignored(self):
        hypotheses = SetMembershipHypothesisClass([1, 2], keys_of=lambda sample: sample)
        assert hypotheses.losses([1, 99]) == {0: 1.0}

    def test_index_of(self):
        hypotheses = SetMembershipHypothesisClass([10, 20], keys_of=lambda s: s)
        assert hypotheses.index_of(20) == 1
        with pytest.raises(KeyError):
            hypotheses.index_of(30)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SetMembershipHypothesisClass([1, 1], keys_of=lambda s: s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SetMembershipHypothesisClass([], keys_of=lambda s: s)
