"""Weighted-graph substrate tests: Graph weight API, IO round-trips,
weighted generators/datasets and the REPRO_WEIGHTED knob machinery."""

from __future__ import annotations

import math
import random
import warnings

import pytest

from repro.errors import DatasetError, GraphError
from repro.graphs import csr as csr_module
from repro.graphs import sssp
from repro.graphs.generators import (
    barabasi_albert_graph,
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    read_dimacs_graph,
    read_edge_list,
    write_edge_list,
)
from repro.graphs.traversal import dict_dijkstra_dag, sssp_distances


class TestGraphWeights:
    def test_default_edges_are_unit(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert not graph.is_weighted
        assert graph.edge_weight(0, 1) == 1
        assert list(graph.weighted_edges()) == [(0, 1, 1), (1, 2, 1)]

    def test_add_edge_with_weight(self):
        graph = Graph()
        graph.add_edge("a", "b", weight=2.5)
        assert graph.is_weighted
        assert graph.edge_weight("a", "b") == 2.5
        assert graph.edge_weight("b", "a") == 2.5

    def test_weight_one_keeps_unit_layout(self):
        graph = Graph()
        graph.add_edge(0, 1, weight=1)
        graph.add_edge(1, 2, weight=1.0)
        assert not graph.is_weighted

    @pytest.mark.parametrize(
        "bad", [0, -1, -0.5, float("nan"), float("inf"), "2", None, True]
    )
    def test_invalid_weights_rejected(self, bad):
        graph = Graph()
        if bad is True:
            # bool(True) == 1 is a valid unit weight by value; reject only
            # explicit non-numbers and non-positive values.
            graph.add_edge(0, 1, weight=bad)
            assert not graph.is_weighted
            return
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, weight=bad)

    def test_rejection_names_the_edge(self):
        graph = Graph()
        with pytest.raises(GraphError, match=r"for edge 'a'-'b'"):
            graph.add_edge("a", "b", weight=-2.0)
        with pytest.raises(GraphError, match=r"for edge 0-1"):
            graph.add_edge(0, 1, weight=float("nan"))
        with pytest.raises(GraphError, match=r"for edge 0-1"):
            graph.add_edge(0, 1, weight="heavy")
        graph.add_edge(0, 1)
        with pytest.raises(GraphError, match=r"for edge 0-1"):
            graph.set_edge_weight(0, 1, 0.0)

    def test_duplicate_edge_keeps_first_weight(self):
        graph = Graph()
        graph.add_edge(0, 1, weight=3.0)
        graph.add_edge(0, 1, weight=7.0)  # no-op: first occurrence wins
        assert graph.edge_weight(0, 1) == 3.0

    def test_set_edge_weight(self):
        graph = Graph.from_edges([(0, 1)])
        version = graph._version
        graph.set_edge_weight(0, 1, 4.0)
        assert graph.is_weighted
        assert graph.edge_weight(0, 1) == 4.0
        assert graph._version > version
        graph.set_edge_weight(0, 1, 1)
        assert not graph.is_weighted
        with pytest.raises(GraphError):
            graph.set_edge_weight(0, 2, 1.5)
        with pytest.raises(GraphError):
            graph.set_edge_weight(0, 1, -2)

    def test_remove_edge_and_node_maintain_weight_counter(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0), (2, 3)])
        assert graph.is_weighted
        graph.remove_edge(0, 1)
        assert graph.is_weighted
        graph.remove_node(1)  # removes the weighted (1, 2) edge
        assert not graph.is_weighted

    def test_from_edges_triples_and_bad_arity(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2)])
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 2) == 1
        with pytest.raises(GraphError):
            Graph.from_edges([(0, 1, 2.0, "extra")])

    def test_copy_subgraph_relabeled_preserve_weights(self):
        graph = Graph.from_edges([("a", "b", 2.0), ("b", "c", 3.5), ("c", "d")])
        clone = graph.copy()
        assert clone.is_weighted
        assert clone.edge_weight("a", "b") == 2.0
        sub = graph.subgraph(["a", "b", "c"])
        assert sub.edge_weight("b", "c") == 3.5
        assert sub.is_weighted
        relabeled, mapping = graph.relabeled()
        assert relabeled.edge_weight(mapping["a"], mapping["b"]) == 2.0
        assert relabeled.is_weighted

    def test_neighbor_weights_order_matches_neighbors(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2), (0, 3, 0.5)])
        pairs = list(graph.neighbor_weights(0))
        assert [node for node, _ in pairs] == list(graph.neighbors(0))
        assert pairs == [(1, 2.0), (2, 1), (3, 0.5)]
        with pytest.raises(GraphError):
            graph.neighbor_weights(99)


class TestCSRWeights:
    def test_snapshot_carries_weights(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 0.5)])
        snapshot = csr_module.as_csr(graph)
        assert snapshot.is_weighted
        weights = list(snapshot.weights)
        # One entry per directed adjacency slot, aligned with indices.
        assert len(weights) == 2 * graph.number_of_edges()
        position = int(snapshot.indptr[0])
        assert weights[position] == 2.0

    def test_unit_snapshot_has_no_weights_array(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert csr_module.as_csr(graph).weights is None

    def test_snapshot_invalidated_on_weight_change(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        first = csr_module.as_csr(graph)
        graph.set_edge_weight(0, 1, 5.0)
        second = csr_module.as_csr(graph)
        assert second is not first
        assert second.is_weighted


class TestWeightedIO:
    def test_edge_list_weight_column_round_trip(self, tmp_path):
        graph = weighted_barabasi_albert_graph(40, 2, seed=3)
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path, header="weighted round trip")
        loaded = read_edge_list(path)
        assert loaded.is_weighted

        def canonical(g):
            return sorted(
                (min(u, v), max(u, v), weight)
                for u, v, weight in g.weighted_edges()
            )

        # Weights round-trip exactly (repr-formatted floats re-parse bitwise).
        assert canonical(loaded) == canonical(graph)

    def test_unweighted_writer_keeps_two_columns(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        path = tmp_path / "plain.txt"
        write_edge_list(graph, path)
        body = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert body == ["0 1", "1 2"]
        assert not read_edge_list(path).is_weighted

    def test_mixed_weight_lines(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("0 1 2.5\n1 2\n")
        graph = read_edge_list(path)
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 2) == 1

    def test_malformed_weight_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.5\n1 2 oops\n")
        with pytest.raises(GraphError, match=r"bad\.txt:2"):
            read_edge_list(path)

    def test_non_positive_weight_raises_with_line_number(self, tmp_path):
        path = tmp_path / "zero.txt"
        path.write_text("0 1 1.5\n2 3 0\n")
        with pytest.raises(GraphError, match=r"zero\.txt:2"):
            read_edge_list(path)

    def test_dimacs_weighted_read(self, tmp_path):
        path = tmp_path / "road.gr"
        path.write_text(
            "c tiny road\np sp 3 4\na 1 2 70\na 2 1 70\na 2 3 35\na 3 2 35\n"
        )
        hop = read_dimacs_graph(path)
        assert not hop.is_weighted
        weighted = read_dimacs_graph(path, weighted=True)
        assert weighted.is_weighted
        assert weighted.edge_weight(1, 2) == 70.0
        assert weighted.edge_weight(2, 3) == 35.0

    def test_dimacs_weighted_missing_weight_raises(self, tmp_path):
        path = tmp_path / "short.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        assert read_dimacs_graph(path).has_edge(1, 2)
        with pytest.raises(GraphError, match=r"short\.gr:2"):
            read_dimacs_graph(path, weighted=True)


class TestWeightedGenerators:
    def test_weighted_ba_deterministic_and_positive(self):
        first = weighted_barabasi_albert_graph(80, 3, seed=11)
        second = weighted_barabasi_albert_graph(80, 3, seed=11)
        assert list(first.weighted_edges()) == list(second.weighted_edges())
        assert first.is_weighted
        for _, _, weight in first.weighted_edges():
            assert 1.0 <= weight <= 10.0
        assert weighted_barabasi_albert_graph(80, 3, seed=12).edge_weight(
            0, 1
        ) != first.edge_weight(0, 1) or True  # seeds differ, no crash

    def test_weighted_ba_same_topology_as_unweighted(self):
        weighted = weighted_barabasi_albert_graph(80, 3, seed=11)
        plain = barabasi_albert_graph(80, 3, seed=11)
        assert sorted(weighted.edges()) == sorted(plain.edges())

    def test_weighted_ba_invalid_range(self):
        with pytest.raises(GraphError):
            weighted_barabasi_albert_graph(20, 2, seed=0, weight_range=(0.0, 1.0))
        with pytest.raises(GraphError):
            weighted_barabasi_albert_graph(20, 2, seed=0, weight_range=(3.0, 1.0))

    def test_weighted_grid_euclidean_like(self):
        graph, coordinates = weighted_grid_road_graph(7, 8, seed=4)
        assert graph.is_weighted
        for u, v, weight in graph.weighted_edges():
            (x1, y1), (x2, y2) = coordinates[u], coordinates[v]
            base = math.hypot(x2 - x1, y2 - y1)
            assert base <= weight <= base * 1.25 + 1e-12
        again, _ = weighted_grid_road_graph(7, 8, seed=4)
        assert list(again.weighted_edges()) == list(graph.weighted_edges())

    def test_registry_datasets(self):
        from repro.datasets import load

        road = load("usa-road-weighted", scale=0.3, seed=2)
        assert road.graph.is_weighted
        assert road.coordinates is not None
        social = load("ba-weighted", scale=0.3, seed=2)
        assert social.graph.is_weighted
        with pytest.raises(DatasetError):
            load("usa-road-weighted", scale=-1)


class TestWeightedKnob:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(sssp.WEIGHTED_ENV_VAR, raising=False)
        assert sssp.resolve_weighted() == "auto"
        monkeypatch.setenv(sssp.WEIGHTED_ENV_VAR, "off")
        assert sssp.resolve_weighted() == "off"
        assert sssp.resolve_weighted("on") == "on"
        sssp.set_default_weighted("on")
        try:
            assert sssp.resolve_weighted() == "on"
            # The override mirrors into the environment for spawn workers.
            assert sssp._env_weighted() == "on"
        finally:
            sssp.set_default_weighted(None)
        assert sssp.resolve_weighted() == "off"  # displaced env restored

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="weighted"):
            sssp.resolve_weighted("sometimes")
        with pytest.raises(ValueError, match=sssp.WEIGHTED_ENV_VAR):
            monkeypatch.setenv(sssp.WEIGHTED_ENV_VAR, "maybe")
            sssp.resolve_weighted()

    def test_effective_weighted_routing(self, monkeypatch):
        monkeypatch.delenv(sssp.WEIGHTED_ENV_VAR, raising=False)
        weighted = Graph.from_edges([(0, 1, 2.0)])
        unit = Graph.from_edges([(0, 1)])
        assert sssp.effective_weighted(weighted) is True
        assert sssp.effective_weighted(unit) is False
        assert sssp.effective_weighted(unit, "on") is True
        assert sssp.effective_weighted(weighted, "off") is False
        snapshot = csr_module.as_csr(weighted)
        assert sssp.effective_weighted(snapshot) is True

    def test_max_depth_rejected_on_weighted_engine(self):
        from repro.graphs.traversal import shortest_path_dag

        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 1.0)])
        with pytest.raises(ValueError, match="max_depth"):
            shortest_path_dag(graph, 0, max_depth=2)

    def test_cli_flag_sets_default(self):
        from repro.cli import main

        try:
            assert main(["datasets", "--version"]) in (0, 1, 2)
        except SystemExit:
            pass
        # The flag machinery itself: --weighted installs the override.
        from repro import cli

        parser = cli.build_parser()
        args = parser.parse_args(["rank", "--weighted", "off"])
        assert args.weighted == "off"


class TestSigmaChoiceRename:
    def test_alias_warns_and_delegates(self):
        from repro.graphs import traversal

        rng = random.Random(0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert csr_module.weighted_choice(["x"], [5], rng) == "x"
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "sigma_choice" in str(caught[0].message)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert traversal._weighted_choice(["y"], [3], rng) == "y"
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "sigma_choice" in str(caught[0].message)

    def test_canonical_name_does_not_warn(self):
        rng = random.Random(0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert csr_module.sigma_choice(["x"], [5], rng) == "x"

    def test_aliases_delegate_bit_identically(self):
        rng_alias, rng_canonical = random.Random(42), random.Random(42)
        population = list(range(10))
        sigmas = [i + 1 for i in range(10)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            picks_alias = [
                csr_module.weighted_choice(population, sigmas, rng_alias)
                for _ in range(50)
            ]
        picks_canonical = [
            csr_module.sigma_choice(population, sigmas, rng_canonical)
            for _ in range(50)
        ]
        assert picks_alias == picks_canonical


class TestDictDijkstraOracle:
    def test_tiny_graph_hand_checked(self):
        # 0-1 (1), 1-2 (1), 0-2 (3): the two-hop route wins (2 < 3).
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
        dag = dict_dijkstra_dag(graph, 0)
        assert dag.distances == {0: 0.0, 1: 1.0, 2: 2.0}
        assert dag.sigma == {0: 1, 1: 1, 2: 1}
        assert dag.predecessors[2] == [1]

    def test_tied_paths_counted(self):
        # Two weight-2 routes 0->3: via 1 and via 2.
        graph = Graph.from_edges(
            [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]
        )
        dag = dict_dijkstra_dag(graph, 0)
        assert dag.distances[3] == 2.0
        assert dag.sigma[3] == 2
        assert set(dag.predecessors[3]) == {1, 2}

    def test_unreachable_nodes_absent(self):
        graph = Graph.from_edges([(0, 1, 2.0)], nodes=[5])
        result = sssp_distances(graph, 0, weighted="on")
        assert 5 not in result
        assert result == {0: 0.0, 1: 2.0}

    def test_heavier_direct_edge_ignored_for_counting(self):
        # Weighted shortest paths can be longer in hops than hop-shortest
        # paths: the direct 0-2 edge is not on any weight-minimal path.
        graph = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0), (2, 3, 1.0)]
        )
        dag = dict_dijkstra_dag(graph, 0)
        assert dag.distances[3] == 3.0
        assert dag.predecessors[2] == [1]
