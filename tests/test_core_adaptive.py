"""Tests for the adaptive empirical-Bernstein sampler."""

from __future__ import annotations

import random

import pytest

from repro.core.adaptive import AdaptiveSampler
from repro.utils.rng import ensure_rng


def bernoulli_sampler(means, rng_holder):
    """Return a sample_losses callable drawing independent Bernoullis."""

    def sample(rng):
        rng = ensure_rng(rng)
        return {
            index: 1.0
            for index, mean in enumerate(means)
            if rng.random() < mean
        }

    return sample


class TestSampleSizes:
    def test_initial_smaller_than_maximum(self):
        sampler = AdaptiveSampler(0.05, 0.05, vc_dimension=4)
        assert sampler.initial_sample_size() <= sampler.maximum_sample_size()

    def test_maximum_grows_with_vc(self):
        small = AdaptiveSampler(0.05, 0.05, vc_dimension=1).maximum_sample_size()
        large = AdaptiveSampler(0.05, 0.05, vc_dimension=10).maximum_sample_size()
        assert large > small

    def test_cap_respected(self):
        sampler = AdaptiveSampler(0.01, 0.01, vc_dimension=10, max_samples_cap=500)
        assert sampler.maximum_sample_size() <= 500
        assert sampler.initial_sample_size() <= 500

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveSampler(0.0, 0.1, 1)
        with pytest.raises(ValueError):
            AdaptiveSampler(0.1, 0.1, -1)


class TestEstimate:
    def test_estimates_close_to_truth(self):
        means = [0.05, 0.3, 0.6]
        sampler = AdaptiveSampler(0.05, 0.05, vc_dimension=2)
        result = sampler.estimate(
            bernoulli_sampler(means, None), len(means), rng=11
        )
        for estimate, mean in zip(result.estimates, means):
            assert abs(estimate - mean) < 0.05

    def test_stops_early_for_low_variance(self):
        # All-zero losses: variance 0, the Bernstein rule fires immediately.
        sampler = AdaptiveSampler(0.05, 0.05, vc_dimension=8)
        result = sampler.estimate(lambda rng: {}, 3, rng=1)
        assert result.converged_by == "bernstein"
        assert result.num_samples < sampler.maximum_sample_size()

    def test_high_variance_uses_more_samples(self):
        low = AdaptiveSampler(0.05, 0.05, vc_dimension=6).estimate(
            bernoulli_sampler([0.01], None), 1, rng=3
        )
        high = AdaptiveSampler(0.05, 0.05, vc_dimension=6).estimate(
            bernoulli_sampler([0.5], None), 1, rng=3
        )
        assert high.num_samples >= low.num_samples

    def test_never_exceeds_maximum(self):
        sampler = AdaptiveSampler(0.2, 0.2, vc_dimension=3, max_samples_cap=300)
        result = sampler.estimate(bernoulli_sampler([0.5, 0.5], None), 2, rng=5)
        assert result.num_samples <= sampler.maximum_sample_size()

    def test_deterministic_given_seed(self):
        sampler = AdaptiveSampler(0.1, 0.1, vc_dimension=2)
        first = sampler.estimate(bernoulli_sampler([0.2, 0.4], None), 2, rng=9)
        second = sampler.estimate(bernoulli_sampler([0.2, 0.4], None), 2, rng=9)
        assert first.estimates == second.estimates
        assert first.num_samples == second.num_samples

    def test_delta_allocations_length(self):
        sampler = AdaptiveSampler(0.1, 0.1, vc_dimension=2)
        result = sampler.estimate(bernoulli_sampler([0.2, 0.4, 0.1], None), 3, rng=2)
        assert len(result.delta_allocations) == 3
        assert all(value > 0 for value in result.delta_allocations)

    def test_invalid_hypothesis_count(self):
        sampler = AdaptiveSampler(0.1, 0.1, vc_dimension=1)
        with pytest.raises(ValueError):
            sampler.estimate(lambda rng: {}, 0)

    def test_deviations_reported(self):
        sampler = AdaptiveSampler(0.1, 0.1, vc_dimension=1)
        result = sampler.estimate(bernoulli_sampler([0.3], None), 1, rng=4)
        assert len(result.deviations) == 1
        if result.converged_by == "bernstein":
            assert result.deviations[0] <= 0.1


class TestGuarantee:
    def test_epsilon_delta_guarantee_over_repetitions(self):
        """Repeated runs should miss the (epsilon) target far less often than
        delta (the bound is conservative)."""
        means = [0.1, 0.45]
        epsilon, delta = 0.08, 0.2
        failures = 0
        trials = 30
        for trial in range(trials):
            sampler = AdaptiveSampler(epsilon, delta, vc_dimension=2)
            result = sampler.estimate(
                bernoulli_sampler(means, None), len(means), rng=trial
            )
            if any(
                abs(estimate - mean) >= epsilon
                for estimate, mean in zip(result.estimates, means)
            ):
                failures += 1
        assert failures <= max(2, int(2 * delta * trials))
