"""Tests for the balanced bidirectional BFS."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, SamplingError
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import shortest_path_dag


class TestDistanceAndCounts:
    def test_adjacent_nodes(self, karate):
        result = bidirectional_shortest_paths(karate, 0, 1)
        assert result.distance == 1
        assert result.num_shortest_paths == 1

    def test_cycle_antipodal(self):
        graph = cycle_graph(8)
        result = bidirectional_shortest_paths(graph, 0, 4)
        assert result.distance == 4
        assert result.num_shortest_paths == 2

    def test_square_two_paths(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        result = bidirectional_shortest_paths(graph, 0, 3)
        assert result.distance == 2
        assert result.num_shortest_paths == 2

    def test_disconnected(self):
        graph = Graph.from_edges([(0, 1), (2, 3)])
        result = bidirectional_shortest_paths(graph, 0, 3)
        assert result.distance is None
        assert not result.connected
        assert result.num_shortest_paths == 0

    def test_same_node_rejected(self, karate):
        with pytest.raises(GraphError):
            bidirectional_shortest_paths(karate, 0, 0)

    def test_missing_node_rejected(self, karate):
        with pytest.raises(GraphError):
            bidirectional_shortest_paths(karate, 0, 999)

    def test_matches_unidirectional_on_karate(self, karate):
        rng = random.Random(0)
        nodes = list(karate.nodes())
        for _ in range(30):
            source, target = rng.sample(nodes, 2)
            dag = shortest_path_dag(karate, source)
            result = bidirectional_shortest_paths(karate, source, target)
            assert result.distance == dag.distances[target]
            assert result.num_shortest_paths == dag.sigma[target]


class TestPathSampling:
    def test_sampled_path_is_valid(self, karate):
        rng = random.Random(5)
        nodes = list(karate.nodes())
        for _ in range(20):
            source, target = rng.sample(nodes, 2)
            result = bidirectional_shortest_paths(karate, source, target)
            path = result.sample_path(rng)
            assert path[0] == source and path[-1] == target
            assert len(path) - 1 == result.distance
            for u, v in zip(path, path[1:]):
                assert karate.has_edge(u, v)
            assert len(set(path)) == len(path)

    def test_sampling_disconnected_raises(self):
        graph = Graph.from_edges([(0, 1), (2, 3)])
        result = bidirectional_shortest_paths(graph, 0, 3)
        with pytest.raises(SamplingError):
            result.sample_path()

    def test_uniform_over_parallel_paths(self):
        # 0 - {1,2,3} - 4 : three shortest paths of length 2.
        graph = Graph.from_edges(
            [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]
        )
        rng = random.Random(11)
        counts = Counter()
        for _ in range(600):
            result = bidirectional_shortest_paths(graph, 0, 4)
            counts[result.sample_path(rng)[1]] += 1
        for middle in (1, 2, 3):
            assert 130 < counts[middle] < 270

    def test_uniform_over_longer_paths(self):
        # Two disjoint length-3 paths between 0 and 5.
        graph = Graph.from_edges(
            [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]
        )
        rng = random.Random(13)
        counts = Counter()
        for _ in range(400):
            result = bidirectional_shortest_paths(graph, 0, 5)
            counts[tuple(result.sample_path(rng))] += 1
        assert set(counts) == {(0, 1, 2, 5), (0, 3, 4, 5)}
        assert 120 < counts[(0, 1, 2, 5)] < 280


class TestAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_match_unidirectional(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(5, 25), 0.25, seed=rng.randint(0, 999))
        nodes = list(graph.nodes())
        source, target = rng.sample(nodes, 2)
        dag = shortest_path_dag(graph, source)
        result = bidirectional_shortest_paths(graph, source, target)
        if target in dag.distances:
            assert result.distance == dag.distances[target]
            assert result.num_shortest_paths == dag.sigma[target]
        else:
            assert result.distance is None
