"""Tests for degree and closeness centralities."""

from __future__ import annotations

import pytest

from repro.centrality.closeness import closeness_centrality
from repro.centrality.degree import degree_centrality
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestDegreeCentrality:
    def test_star(self):
        centrality = degree_centrality(star_graph(5))
        assert centrality[0] == pytest.approx(1.0)
        assert centrality[1] == pytest.approx(1 / 5)

    def test_unnormalized(self):
        centrality = degree_centrality(star_graph(5), normalized=False)
        assert centrality[0] == 5

    def test_complete_graph_all_one(self):
        centrality = degree_centrality(complete_graph(4))
        assert all(value == pytest.approx(1.0) for value in centrality.values())

    def test_single_node(self):
        graph = Graph()
        graph.add_node(0)
        assert degree_centrality(graph) == {0: 0.0}


class TestClosenessCentrality:
    def test_path_center_highest(self):
        centrality = closeness_centrality(path_graph(5))
        assert centrality[2] == max(centrality.values())
        assert centrality[0] == min(centrality.values())

    def test_complete_graph(self):
        centrality = closeness_centrality(complete_graph(5))
        assert all(value == pytest.approx(1.0) for value in centrality.values())

    def test_restricted_nodes(self, karate):
        subset = closeness_centrality(karate, nodes=[0, 1, 2])
        assert set(subset) == {0, 1, 2}

    def test_disconnected_component_scaled_down(self):
        graph = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        centrality = closeness_centrality(graph)
        # Node 3 is the centre of a 3-node component in a 5-node graph.
        assert 0 < centrality[3] < 1
        assert centrality[0] < centrality[3]

    def test_isolated_node_zero(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        assert closeness_centrality(graph)[2] == 0.0
