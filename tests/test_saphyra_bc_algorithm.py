"""End-to-end tests for the SaPHyRa_bc algorithm."""

from __future__ import annotations

import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.datasets.synthetic import social_surrogate
from repro.errors import GraphError
from repro.graphs.block_cut_tree import build_block_cut_tree
from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.graph import Graph
from repro.metrics.rank_correlation import spearman_rank_correlation
from repro.metrics.zeros import classify_zeros
from repro.saphyra_bc.algorithm import SaPHyRaBC


class TestValidation:
    def test_requires_connected_graph(self):
        graph = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        with pytest.raises(GraphError, match="connected"):
            SaPHyRaBC(seed=1).rank(graph, [0, 1])

    def test_requires_three_nodes(self):
        with pytest.raises(GraphError):
            SaPHyRaBC(seed=1).rank(Graph.from_edges([(0, 1)]), [0])

    def test_requires_targets_nonempty(self, karate):
        with pytest.raises(ValueError):
            SaPHyRaBC(seed=1).rank(karate, [])

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SaPHyRaBC(epsilon=0.0)


class TestAccuracy:
    def test_epsilon_guarantee_on_karate_subset(self, karate):
        targets = [0, 1, 2, 5, 9, 11, 25, 33]
        truth = betweenness_centrality(karate)
        result = SaPHyRaBC(epsilon=0.03, delta=0.05, seed=4).rank(karate, targets)
        for node in targets:
            assert abs(result.scores[node] - truth[node]) < 0.03

    def test_epsilon_guarantee_full_network(self, karate):
        truth = betweenness_centrality(karate)
        result = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=8).rank(karate)
        for node in karate.nodes():
            assert abs(result.scores[node] - truth[node]) < 0.05

    def test_ranking_quality_on_karate(self, karate):
        targets = list(karate.nodes())
        truth = betweenness_centrality(karate)
        result = SaPHyRaBC(epsilon=0.02, delta=0.05, seed=2).rank(karate, targets)
        correlation = spearman_rank_correlation(truth, result.scores)
        assert correlation > 0.9

    def test_no_false_zeros(self, karate):
        targets = list(karate.nodes())
        truth = betweenness_centrality(karate)
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=6).rank(karate, targets)
        zeros = classify_zeros(truth, result.scores)
        assert zeros.false_zeros == 0

    def test_exact_on_single_block_small_centralities(self):
        """On K5 every betweenness is 0 and the estimate must be exactly 0."""
        graph = complete_graph(5)
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=1).rank(graph, [0, 1, 2])
        assert all(value == pytest.approx(0.0, abs=1e-9) for value in result.scores.values())

    def test_path_graph_cutpoint_scores(self):
        """On a path all betweenness comes from bc_a; the estimate is exact."""
        graph = path_graph(7)
        truth = betweenness_centrality(graph)
        result = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=3).rank(graph, list(graph.nodes()))
        for node in graph.nodes():
            assert result.scores[node] == pytest.approx(truth[node], abs=1e-9)

    def test_social_surrogate_subset(self):
        graph = social_surrogate(150, pendant_fraction=0.4, seed=5)
        truth = betweenness_centrality(graph)
        targets = sorted(graph.nodes())[::5]
        result = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=9).rank(graph, targets)
        truth_subset = {node: truth[node] for node in targets}
        assert spearman_rank_correlation(truth_subset, result.scores) > 0.85
        for node in targets:
            assert abs(result.scores[node] - truth[node]) < 0.05


class TestResultStructure:
    def test_metadata(self, karate):
        targets = [0, 1, 2, 3]
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=1).rank(karate, targets)
        assert result.targets == targets
        assert set(result.ranking) == set(targets)
        assert len(result) == 4
        assert 0.0 < result.eta <= 1.0
        assert result.gamma > 0
        assert 0.0 <= result.lambda_exact <= 1.0
        assert result.vc_dimension >= 0
        assert result.epsilon == 0.1
        assert "preprocess" in result.stage_seconds
        assert result.wall_time_seconds > 0

    def test_ranking_sorted_by_score(self, karate):
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=2).rank(karate, [0, 1, 2, 3, 4])
        scores = [result.scores[node] for node in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_given_seed(self, karate):
        first = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=11).rank(karate, [0, 1, 2, 3])
        second = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=11).rank(karate, [0, 1, 2, 3])
        assert first.scores == second.scores
        assert first.ranking == second.ranking

    def test_reusing_block_cut_tree(self, karate):
        tree = build_block_cut_tree(karate)
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=1).rank(
            karate, [0, 1, 2], block_cut_tree=tree
        )
        assert len(result.ranking) == 3

    def test_max_samples_cap(self, karate):
        result = SaPHyRaBC(
            epsilon=0.02, delta=0.05, seed=1, max_samples_cap=200
        ).rank(karate, [0, 1, 2, 3])
        assert result.num_samples <= 200


class TestAblation:
    def test_disabling_exact_subspace_still_accurate_but_can_false_zero(self, karate):
        truth = betweenness_centrality(karate)
        targets = list(karate.nodes())
        ablated = SaPHyRaBC(
            epsilon=0.05, delta=0.05, seed=3, use_exact_subspace=False
        ).rank(karate, targets)
        for node in targets:
            assert abs(ablated.scores[node] - truth[node]) < 0.05
        assert ablated.lambda_exact == pytest.approx(0.0)

    def test_exact_subspace_reduces_samples(self, karate):
        targets = list(karate.nodes())
        with_exact = SaPHyRaBC(epsilon=0.03, delta=0.05, seed=5).rank(karate, targets)
        without_exact = SaPHyRaBC(
            epsilon=0.03, delta=0.05, seed=5, use_exact_subspace=False
        ).rank(karate, targets)
        assert with_exact.num_samples <= without_exact.num_samples
