"""Cross-validation against independent implementations (networkx / scipy).

The library is self-contained — it never imports networkx or scipy — but the
test environment ships both, so they make excellent independent oracles for
the graph substrate and the rank-correlation metrics.
"""

from __future__ import annotations

import random

import pytest

networkx = pytest.importorskip("networkx")
scipy_stats = pytest.importorskip("scipy.stats")

from repro.centrality.brandes import betweenness_centrality
from repro.centrality.closeness import closeness_centrality
from repro.graphs.biconnected import biconnected_components
from repro.graphs.components import largest_connected_component
from repro.graphs.diameter import exact_diameter
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.metrics.rank_correlation import kendall_tau, spearman_rank_correlation


def to_networkx(graph: Graph):
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def random_connected_graph(seed: int) -> Graph:
    rng = random.Random(seed)
    graph = erdos_renyi_graph(rng.randint(8, 40), 0.15, seed=rng.randint(0, 9999))
    return graph.subgraph(largest_connected_component(graph))


class TestBetweennessAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        graph = random_connected_graph(seed)
        if graph.number_of_nodes() < 3:
            pytest.skip("degenerate sample")
        ours = betweenness_centrality(graph, normalized=False)
        theirs = networkx.betweenness_centrality(to_networkx(graph), normalized=False)
        n = graph.number_of_nodes()
        for node in graph.nodes():
            # networkx reports the unordered-pair sum; Eq. 3 uses ordered pairs.
            assert ours[node] == pytest.approx(2 * theirs[node], abs=1e-9)

    def test_karate_normalized_relationship(self, karate):
        ours = betweenness_centrality(karate, normalized=True)
        theirs = networkx.betweenness_centrality(to_networkx(karate), normalized=False)
        n = karate.number_of_nodes()
        for node in karate.nodes():
            assert ours[node] == pytest.approx(2 * theirs[node] / (n * (n - 1)))


class TestClosenessAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_wf_improved(self, seed):
        graph = random_connected_graph(seed)
        if graph.number_of_nodes() < 3:
            pytest.skip("degenerate sample")
        ours = closeness_centrality(graph)
        theirs = networkx.closeness_centrality(to_networkx(graph), wf_improved=True)
        for node in graph.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)


class TestStructureAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_articulation_points(self, seed):
        graph = random_connected_graph(seed)
        ours = biconnected_components(graph).cutpoints
        theirs = set(networkx.articulation_points(to_networkx(graph)))
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(8))
    def test_biconnected_node_sets(self, seed):
        graph = random_connected_graph(seed)
        ours = {frozenset(block) for block in biconnected_components(graph).components}
        theirs = {
            frozenset(block)
            for block in networkx.biconnected_components(to_networkx(graph))
            if len(block) >= 2
        }
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(5))
    def test_diameter(self, seed):
        graph = random_connected_graph(seed)
        if graph.number_of_nodes() < 2:
            pytest.skip("degenerate sample")
        assert exact_diameter(graph) == networkx.diameter(to_networkx(graph))


class TestRankCorrelationAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_spearman_matches_scipy_without_ties(self, seed):
        rng = random.Random(seed)
        keys = list(range(rng.randint(5, 40)))
        truth = {key: rng.random() for key in keys}
        estimate = {key: rng.random() for key in keys}
        ours = spearman_rank_correlation(truth, estimate)
        theirs = scipy_stats.spearmanr(
            [truth[key] for key in keys], [estimate[key] for key in keys]
        ).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_kendall_matches_scipy_without_ties(self, seed):
        rng = random.Random(seed)
        keys = list(range(rng.randint(5, 30)))
        truth = {key: rng.random() for key in keys}
        estimate = {key: rng.random() for key in keys}
        ours = kendall_tau(truth, estimate)
        theirs = scipy_stats.kendalltau(
            [truth[key] for key in keys], [estimate[key] for key in keys]
        ).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)
