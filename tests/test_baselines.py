"""Tests for the whole-network baselines (ABRA, KADABRA, RK, Bader)."""

from __future__ import annotations

import pytest

from repro.baselines import ABRA, KADABRA, BaderPivot, RiondatoKornaropoulos
from repro.baselines.base import BaselineResult
from repro.centrality.brandes import betweenness_centrality
from repro.errors import GraphError
from repro.graphs.generators import complete_graph
from repro.graphs.graph import Graph

ESTIMATORS = [
    ("abra", lambda **kw: ABRA(**kw)),
    ("kadabra", lambda **kw: KADABRA(**kw)),
    ("rk", lambda **kw: RiondatoKornaropoulos(**kw)),
]


class TestBaselineResult:
    def test_subset_scores_and_ranking(self):
        result = BaselineResult(
            algorithm="test",
            scores={1: 0.3, 2: 0.1, 3: 0.5},
            num_samples=10,
            epsilon=0.1,
            delta=0.1,
        )
        assert result.subset_scores([1, 3]) == {1: 0.3, 3: 0.5}
        assert result.subset_scores([1, 99]) == {1: 0.3, 99: 0.0}
        assert result.ranking() == [3, 1, 2]
        assert result.ranking([1, 2]) == [1, 2]


@pytest.mark.parametrize("name,factory", ESTIMATORS)
class TestCommonBehaviour:
    def test_scores_for_every_node(self, karate, name, factory):
        result = factory(epsilon=0.1, delta=0.1, seed=3).estimate(karate)
        assert set(result.scores) == set(karate.nodes())
        assert result.algorithm == name
        assert result.num_samples > 0
        assert result.wall_time_seconds > 0

    def test_epsilon_guarantee(self, karate, name, factory):
        truth = betweenness_centrality(karate)
        result = factory(epsilon=0.05, delta=0.05, seed=7).estimate(karate)
        for node in karate.nodes():
            assert abs(result.scores[node] - truth[node]) < 0.05

    def test_deterministic_given_seed(self, karate, name, factory):
        first = factory(epsilon=0.2, delta=0.1, seed=5).estimate(karate)
        second = factory(epsilon=0.2, delta=0.1, seed=5).estimate(karate)
        assert first.scores == second.scores
        assert first.num_samples == second.num_samples

    def test_requires_connected_graph(self, name, factory):
        graph = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        with pytest.raises(GraphError):
            factory(epsilon=0.1, delta=0.1, seed=1).estimate(graph)

    def test_tiny_graph_rejected(self, name, factory):
        with pytest.raises(GraphError):
            factory(epsilon=0.1, delta=0.1, seed=1).estimate(Graph.from_edges([(0, 1)]))

    def test_max_samples_cap(self, karate, name, factory):
        result = factory(
            epsilon=0.02, delta=0.05, seed=2, max_samples_cap=100
        ).estimate(karate)
        assert result.num_samples <= 100

    def test_invalid_epsilon(self, name, factory):
        with pytest.raises(ValueError):
            factory(epsilon=1.5, delta=0.1)


class TestAdaptiveBehaviour:
    def test_kadabra_smaller_epsilon_needs_more_samples(self, karate):
        loose = KADABRA(epsilon=0.2, delta=0.1, seed=1).estimate(karate)
        tight = KADABRA(epsilon=0.05, delta=0.1, seed=1).estimate(karate)
        assert tight.num_samples >= loose.num_samples

    def test_abra_converges_adaptively_on_easy_graph(self):
        # On K6 every betweenness is 0: variance 0, the check fires at the
        # first stage.
        result = ABRA(epsilon=0.1, delta=0.1, seed=2).estimate(complete_graph(6))
        assert result.converged_by == "adaptive"
        assert all(value == 0.0 for value in result.scores.values())

    def test_kadabra_complete_graph_zero(self):
        result = KADABRA(epsilon=0.1, delta=0.1, seed=2).estimate(complete_graph(6))
        assert all(value == 0.0 for value in result.scores.values())

    def test_abra_stage_growth_validation(self):
        with pytest.raises(ValueError):
            ABRA(stage_growth=1.0)


class TestBaderPivot:
    def test_all_pivots_equals_exact(self, karate):
        truth = betweenness_centrality(karate)
        result = BaderPivot(num_pivots=34, seed=1).estimate(karate)
        for node in karate.nodes():
            assert result.scores[node] == pytest.approx(truth[node])

    def test_default_pivot_count_bounded_by_n(self, karate):
        result = BaderPivot(epsilon=0.01, delta=0.01, seed=1).estimate(karate)
        assert result.num_samples <= karate.number_of_nodes()

    def test_invalid_pivot_count(self):
        with pytest.raises(ValueError):
            BaderPivot(num_pivots=0)

    def test_subset_estimate_reasonable(self, karate):
        truth = betweenness_centrality(karate)
        result = BaderPivot(num_pivots=20, seed=5).estimate(karate)
        for node in karate.nodes():
            assert abs(result.scores[node] - truth[node]) < 0.25
