"""Tests for the Graph data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_from_edges(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_from_edges_with_isolated_nodes(self):
        graph = Graph.from_edges([(0, 1)], nodes=[5, 6])
        assert graph.has_node(5)
        assert graph.has_node(6)
        assert graph.degree(5) == 0

    def test_duplicate_edges_collapse(self):
        graph = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(3, 3)])

    def test_string_nodes_supported(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        assert graph.degree("b") == 2


class TestMutation:
    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.number_of_nodes() == 1

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert graph.has_node(1) and graph.has_node(2)

    def test_remove_edge(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.number_of_edges() == 1
        assert graph.has_node(0)

    def test_remove_missing_edge_raises(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph.remove_edge(0, 2)

    def test_remove_node(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        graph.remove_node(1)
        assert not graph.has_node(1)
        assert graph.number_of_edges() == 1
        assert graph.degree(0) == 1

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_node(0)


class TestQueries:
    def test_neighbors(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert sorted(graph.neighbors(0)) == [1, 2, 3]
        assert list(graph.neighbors(1)) == [0]

    def test_neighbors_missing_node_raises(self):
        with pytest.raises(GraphError):
            list(Graph().neighbors(9))

    def test_degree_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().degree(9)

    def test_has_edge_symmetric(self):
        graph = Graph.from_edges([(0, 1)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_edges_each_once(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        edges = {frozenset(edge) for edge in graph.edges()}
        assert edges == {frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})}
        assert len(list(graph.edges())) == 3

    def test_dunder_contains_len_iter(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert 0 in graph
        assert 9 not in graph
        assert len(graph) == 3
        assert sorted(graph) == [0, 1, 2]

    def test_adjacency_export(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        adjacency = graph.adjacency()
        assert adjacency[1] == [0, 2] or adjacency[1] == [2, 0]
        # Export is a copy; mutating it does not touch the graph.
        adjacency[1].append(99)
        assert 99 not in graph.neighbors(1)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_node(3)
        assert clone.number_of_edges() == 3

    def test_subgraph_induced_edges(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3
        assert not sub.has_node(3)

    def test_subgraph_ignores_unknown_nodes(self):
        graph = Graph.from_edges([(0, 1)])
        sub = graph.subgraph([0, 1, 99])
        assert sub.number_of_nodes() == 2

    def test_relabeled(self):
        graph = Graph.from_edges([("x", "y"), ("y", "z")])
        relabeled, mapping = graph.relabeled()
        assert sorted(mapping.values()) == [0, 1, 2]
        assert relabeled.number_of_edges() == 2
        assert relabeled.has_edge(mapping["x"], mapping["y"])


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return draw(st.lists(st.sampled_from(possible), max_size=30))


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_handshake_lemma(self, edges):
        graph = Graph.from_edges(edges)
        degree_sum = sum(graph.degree(node) for node in graph.nodes())
        assert degree_sum == 2 * graph.number_of_edges()

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_edges_iteration_matches_edge_count(self, edges):
        graph = Graph.from_edges(edges)
        assert len(list(graph.edges())) == graph.number_of_edges()

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_copy_equals_original(self, edges):
        graph = Graph.from_edges(edges)
        clone = graph.copy()
        assert set(map(frozenset, clone.edges())) == set(map(frozenset, graph.edges()))
        assert list(clone.nodes()) == list(graph.nodes())
