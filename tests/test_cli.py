"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["frobnicate"])


class TestProcessKnobFlags:
    def test_shared_memory_flag_applies_override(self, capsys, monkeypatch):
        from repro import parallel

        # Pin the environment: with REPRO_SHARED_MEMORY exported (e.g. the
        # README's env-wide workflow) the post-restore default would be the
        # exported value, not the built-in on.
        monkeypatch.delenv(parallel.SHARED_MEMORY_ENV_VAR, raising=False)
        try:
            code = main(
                ["rank", "--dataset", "karate", "--subset-size", "6",
                 "--epsilon", "0.2", "--delta", "0.1", "--seed", "3",
                 "--shared-memory", "off"]
            )
            assert code == 0
            assert parallel.shared_memory_enabled() is False
            assert "rank | node" in capsys.readouterr().out
        finally:
            parallel.set_shared_memory_enabled(None)
        assert parallel.shared_memory_enabled() is True

    def test_workers_flag_mirrors_environment(self, capsys, monkeypatch):
        import os

        from repro import parallel

        monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
        try:
            code = main(
                ["rank", "--dataset", "karate", "--subset-size", "6",
                 "--epsilon", "0.2", "--delta", "0.1", "--seed", "3",
                 "--workers", "0"]
            )
            assert code == 0
            assert os.environ[parallel.WORKERS_ENV_VAR] == "0"
        finally:
            parallel.set_default_workers(None)
        assert parallel.WORKERS_ENV_VAR not in os.environ

    def test_start_method_flag_mirrors_environment(self, capsys, monkeypatch):
        import os

        from repro import parallel

        monkeypatch.delenv(parallel.START_METHOD_ENV_VAR, raising=False)
        try:
            code = main(
                ["rank", "--dataset", "karate", "--subset-size", "6",
                 "--epsilon", "0.2", "--delta", "0.1", "--seed", "3",
                 "--workers", "0", "--start-method", "spawn"]
            )
            assert code == 0
            assert os.environ[parallel.START_METHOD_ENV_VAR] == "spawn"
            assert parallel.start_method() == "spawn"
        finally:
            parallel.set_default_start_method(None)
            parallel.set_default_workers(None)
        assert parallel.START_METHOD_ENV_VAR not in os.environ

    def test_dag_cache_bounds_flags_mirror_environment(self, capsys, monkeypatch):
        import os

        from repro.engine import dag_cache as dag_cache_module

        monkeypatch.delenv(dag_cache_module.DAG_CACHE_SIZE_ENV_VAR, raising=False)
        monkeypatch.delenv(dag_cache_module.DAG_CACHE_BUDGET_ENV_VAR, raising=False)
        try:
            code = main(
                ["rank", "--dataset", "karate", "--subset-size", "6",
                 "--epsilon", "0.2", "--delta", "0.1", "--seed", "3",
                 "--dag-cache-size", "33", "--dag-cache-budget", "44444"]
            )
            assert code == 0
            assert os.environ[dag_cache_module.DAG_CACHE_SIZE_ENV_VAR] == "33"
            assert os.environ[dag_cache_module.DAG_CACHE_BUDGET_ENV_VAR] == "44444"
            assert dag_cache_module.resolve_dag_cache_size() == 33
            assert dag_cache_module.resolve_dag_cache_budget() == 44444
        finally:
            dag_cache_module.set_default_dag_cache_size(None)
            dag_cache_module.set_default_dag_cache_budget(None)
        assert dag_cache_module.DAG_CACHE_SIZE_ENV_VAR not in os.environ
        assert dag_cache_module.DAG_CACHE_BUDGET_ENV_VAR not in os.environ

    def test_dag_cache_delta_flags_mirror_environment(self, capsys, monkeypatch):
        import os

        from repro.engine import dag_cache as dag_cache_module

        monkeypatch.delenv(dag_cache_module.DAG_CACHE_DELTA_ENV_VAR, raising=False)
        monkeypatch.delenv(
            dag_cache_module.DELTA_JOURNAL_SIZE_ENV_VAR, raising=False
        )
        try:
            code = main(
                ["rank", "--dataset", "karate", "--subset-size", "6",
                 "--epsilon", "0.2", "--delta", "0.1", "--seed", "3",
                 "--dag-cache-delta", "on", "--delta-journal-size", "64"]
            )
            assert code == 0
            assert os.environ[dag_cache_module.DAG_CACHE_DELTA_ENV_VAR] == "on"
            assert os.environ[dag_cache_module.DELTA_JOURNAL_SIZE_ENV_VAR] == "64"
            assert dag_cache_module.resolve_dag_cache_delta() == "on"
            assert dag_cache_module.resolve_delta_journal_size() == 64
        finally:
            dag_cache_module.set_default_dag_cache_delta(None)
            dag_cache_module.set_default_delta_journal_size(None)
        assert dag_cache_module.DAG_CACHE_DELTA_ENV_VAR not in os.environ
        assert dag_cache_module.DELTA_JOURNAL_SIZE_ENV_VAR not in os.environ


class TestDatasetsCommand:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("karate", "flickr", "usa-road"):
            assert name in output


class TestRankCommand:
    def test_rank_karate(self, capsys):
        code = main(
            ["rank", "--dataset", "karate", "--subset-size", "8",
             "--epsilon", "0.1", "--delta", "0.1", "--seed", "3", "--top", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dataset=karate" in output
        assert "rank | node" in output

    def test_rank_explicit_targets(self, capsys):
        code = main(
            ["rank", "--dataset", "karate", "--targets", "0, 1, 33",
             "--epsilon", "0.1", "--delta", "0.1", "--seed", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "33" in output

    def test_rank_edge_list(self, tmp_path, capsys):
        path = tmp_path / "toy.txt"
        path.write_text("0 1\n1 2\n2 0\n2 3\n3 4\n4 2\n")
        code = main(
            ["rank", "--edge-list", str(path), "--subset-size", "4",
             "--epsilon", "0.2", "--delta", "0.2", "--seed", "1"]
        )
        assert code == 0
        assert "estimated betweenness" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_on_karate(self, capsys):
        code = main(
            ["compare", "--dataset", "karate", "--subset-size", "8",
             "--epsilon", "0.2", "--delta", "0.2", "--seed", "2",
             "--estimators", "saphyra,kadabra"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "estimator" in output and "saphyra" in output


class TestTableCommand:
    def test_table2(self, capsys):
        code = main(
            ["table", "2", "--scale", "0.12", "--seed", "1",
             "--datasets", "flickr,usa-road"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "|" in output and "flickr" in output

    def test_table3(self, capsys):
        code = main(["table", "3", "--scale", "0.3", "--seed", "1"])
        assert code == 0
        assert "NYC" in capsys.readouterr().out

    def test_table1(self, capsys):
        code = main(
            ["table", "1", "--scale", "0.1", "--seed", "1", "--datasets", "flickr"]
        )
        assert code == 0
        assert "VC" in capsys.readouterr().out


class TestFigureCommand:
    def test_figure6_small(self, capsys):
        code = main(
            ["figure", "6", "--scale", "0.1", "--num-subsets", "1",
             "--subset-size", "15", "--datasets", "flickr",
             "--epsilons", "0.2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "true zeros" in output

    def test_figure3_small(self, capsys):
        code = main(
            ["figure", "3", "--scale", "0.1", "--num-subsets", "1",
             "--subset-size", "15", "--datasets", "flickr",
             "--epsilons", "0.2,0.1"]
        )
        assert code == 0
        assert "Fig. 3" in capsys.readouterr().out
