"""Smoke tests: the example scripts must run end to end.

Only the fast examples are executed directly; the slower ones are run with
reduced command-line parameters.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str]) -> None:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", [])
        output = capsys.readouterr().out
        assert "Spearman rank correlation" in output

    def test_framework_other_centrality(self, capsys):
        run_example("framework_other_centrality.py", [])
        output = capsys.readouterr().out
        assert "k-path" in output

    def test_closeness_ranking(self, capsys):
        run_example(
            "closeness_ranking.py", ["--scale", "0.1", "--subset-size", "8"]
        )
        output = capsys.readouterr().out
        assert "closeness" in output

    @pytest.mark.slow
    def test_social_subset_ranking(self, capsys):
        run_example(
            "social_subset_ranking.py",
            ["--scale", "0.1", "--subset-size", "15", "--epsilon", "0.2"],
        )
        output = capsys.readouterr().out
        assert "SaPHyRa_bc" in output

    @pytest.mark.slow
    def test_compare_baselines(self, capsys):
        run_example(
            "compare_baselines.py",
            ["--scale", "0.12", "--subset-size", "15", "--epsilon", "0.2"],
        )
        output = capsys.readouterr().out
        assert "KADABRA" in output

    @pytest.mark.slow
    def test_road_network_analysis(self, capsys):
        run_example("road_network_analysis.py", ["--scale", "0.3", "--epsilon", "0.2"])
        output = capsys.readouterr().out
        assert "Geographic areas" in output
