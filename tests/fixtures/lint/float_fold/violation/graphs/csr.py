"""Violation twin: unaudited folds in a kernel module."""


def distance_total(dist, reached):
    total = dist[reached].sum()  # pairwise: re-associates float adds
    return total


def numpy_style_total(np, rows):
    return np.sum(rows)


def fsum_total(math, values):
    return math.fsum(values)


def builtin_total(values):
    return sum(values)
