"""Compliant twin: integer folds wrapped, float fold audited."""


def reachable_count(reached):
    return int(reached.sum())


def degree_total(indptr, nodes):
    return int(sum(indptr[node + 1] - indptr[node] for node in nodes))


def distance_total(dist, reached):
    # repro-lint: disable=float-fold — audited: sequential fold over a list, order pinned to node index
    return sum(dist[reached].tolist())
