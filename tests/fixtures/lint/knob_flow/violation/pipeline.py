"""Seeded knob-flow violation: a knob accepted and then dropped.

``run_experiment`` accepts the ``frob`` knob and calls ``helper`` —
whose signature also accepts ``frob`` — without binding it.  The callee
re-resolves the knob from the process-wide default, so the caller's
argument silently stops mattering.  Exactly one finding.
"""

import os

FROB_ENV_VAR = "REPRO_FROB"


def resolve_frob(frob=None):
    if frob is not None:
        return str(frob)
    return os.environ.get(FROB_ENV_VAR, "default")


def helper(values, frob=None):
    frob = resolve_frob(frob)
    return [(value, frob) for value in values]


def run_experiment(values, frob=None):
    return helper(values)
