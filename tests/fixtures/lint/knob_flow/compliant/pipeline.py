"""Compliant twin: every accepted knob reaches every accepting callee.

Three sanctioned bindings: explicit keyword forwarding
(``frob=frob``), an explicit pin (a visible, auditable decision), and a
``**kwargs`` splat (pass-through forwarding the rule cannot — and must
not — see through).
"""

import os

FROB_ENV_VAR = "REPRO_FROB"


def resolve_frob(frob=None):
    if frob is not None:
        return str(frob)
    return os.environ.get(FROB_ENV_VAR, "default")


def helper(values, frob=None):
    frob = resolve_frob(frob)
    return [(value, frob) for value in values]


def run_experiment(values, frob=None):
    return helper(values, frob=frob)


def run_pinned(values, frob=None):
    del frob  # deliberately ignored: the pin below is the audited choice
    return helper(values, frob="pinned")


def run_splat(values, frob=None, **kwargs):
    kwargs.setdefault("frob", frob)
    return helper(values, **kwargs)


class Sweep:
    def __init__(self, frob=None):
        self.frob = frob

    def score(self, values, frob=None):
        return helper(values, frob=frob)

    def run(self, values, frob=None):
        return self.score(values, frob)
