"""Compliant twin: both fencing idioms plus a knob-complete key.

``SnapshotCache.put`` embeds ``graph._version`` in the entry it stores
(the ``_csr_cache`` idiom).  ``RowCache`` splits the work across methods
— ``invalidate`` never touches ``._version`` itself, but the owning
class revalidates on ``lookup`` (the ``SourceDAGCache`` idiom).  And
``compute_rows`` keys on every knob the payload depends on.
"""

_ROWS = {}


class SnapshotCache:
    def __init__(self):
        self._entries = {}

    def put(self, graph, payload):
        self._entries[graph] = (graph._version, payload)

    def lookup(self, graph):
        cached = self._entries.get(graph)
        if cached is not None and cached[0] == graph._version:
            return cached[1]
        return None


class RowCache:
    def __init__(self):
        self._entries = {}

    def put(self, graph, rows):
        self._entries[graph] = (graph._version, rows)

    def invalidate(self, graph):
        if graph in self._entries:
            del self._entries[graph]

    def lookup(self, graph):
        cached = self._entries.get(graph)
        if cached is not None and cached[0] == graph._version:
            return cached[1]
        return None


def compute_rows(graph, backend=None):
    key = ("rows", backend, graph.number_of_nodes())
    cached = _ROWS.get(key)
    if cached is not None:
        return cached
    rows = [backend for _ in range(graph.number_of_nodes())]
    _ROWS[("rows", backend, graph.number_of_nodes())] = rows
    return rows
