"""Seeded cache-version-key violations — both halves of the contract.

``SnapshotCache.put`` stores under a ``Graph`` key with no ``._version``
read anywhere in the method or the class: a mutated graph would be served
the stale payload forever.  ``compute_rows`` caches under a literal key
tuple that omits its ``backend`` parameter even though the payload
depends on it: entries computed under different backends collide.
"""

_ROWS = {}


class SnapshotCache:
    def __init__(self):
        self._entries = {}

    def put(self, graph, payload):
        self._entries[graph] = payload

    def lookup(self, graph):
        return self._entries.get(graph)


def compute_rows(graph, backend=None):
    key = ("rows", graph.number_of_nodes())
    cached = _ROWS.get(key)
    if cached is not None:
        return cached
    rows = [backend for _ in range(graph.number_of_nodes())]
    _ROWS[("rows", graph.number_of_nodes())] = rows
    return rows
