"""Compliant twin: a live, audited suppression.

``float-fold`` still fires on the fold below, the suppression absorbs
it, and ``suppression-stale`` therefore stays quiet: the exemption is
earning its keep.
"""


def edge_total(values):
    # repro-lint: disable=float-fold — audited: sequential fold, order pinned upstream
    total = sum(values)
    return total
