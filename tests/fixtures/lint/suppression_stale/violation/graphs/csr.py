"""Seeded suppression-stale violation: a disable that outlived its code.

The fold below was made integer in a refactor, so ``float-fold`` no
longer fires on it — but the suppression comment was left behind.  With
``float-fold`` and ``suppression-stale`` both running, the stale comment
is itself the finding.
"""


def edge_total(counts):
    # repro-lint: disable=float-fold — audited: order-pinned float fold
    total = int(sum(counts))
    return total
