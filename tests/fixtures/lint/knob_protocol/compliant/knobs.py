"""Compliant twin: the full knob surface for REPRO_FROB."""

import os

FROB_ENV_VAR = "REPRO_FROB"

_default_frob = None


def set_default_frob(value):
    global _default_frob
    _default_frob = value


def frob_enabled():
    if _default_frob is not None:
        return _default_frob
    return os.environ.get(FROB_ENV_VAR, "") not in ("", "0")
