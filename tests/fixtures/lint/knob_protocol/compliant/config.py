"""ExperimentConfig with the frob field."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class ExperimentConfig:
    frob: Optional[bool] = None
