"""CLI with the --frob flag."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--frob", choices=("on", "off"), default=None)
    return parser
