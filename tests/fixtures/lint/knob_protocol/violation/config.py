"""ExperimentConfig without the frob field."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class ExperimentConfig:
    other: Optional[str] = None
