"""Violation twin: an env-only knob with no override, flag or field."""

import os

FROB_ENV_VAR = "REPRO_FROB"


def frob_enabled():
    return os.environ.get(FROB_ENV_VAR, "") not in ("", "0")
