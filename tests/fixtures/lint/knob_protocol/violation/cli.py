"""CLI without the --frob flag."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--other", default=None)
    return parser
