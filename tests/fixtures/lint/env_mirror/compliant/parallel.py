"""Compliant twin: writes only inside EnvMirroredOverride."""

import os


class EnvMirroredOverride:
    def __init__(self, env_var):
        self.env_var = env_var
        self._displaced = None
        self._active = False

    def set(self, encoded):
        if encoded is None:
            if self._active:
                if self._displaced is None:
                    os.environ.pop(self.env_var, None)
                else:
                    os.environ[self.env_var] = self._displaced
                self._active = False
            return
        if not self._active:
            self._displaced = os.environ.get(self.env_var)
            self._active = True
        os.environ[self.env_var] = encoded


def read_only(name):
    return os.environ.get(name, "")
