"""Violation twin: raw environment writes outside the mirror."""

import os


def force_backend(value):
    os.environ["SOME_VAR"] = value


def clear_backend():
    del os.environ["SOME_VAR"]


def drop_backend():
    os.environ.pop("SOME_VAR", None)


def bulk(values):
    os.environ.update(values)


def low_level(value):
    os.putenv("SOME_VAR", value)
