"""Violation twin: global RNG state."""

import random

import numpy as np


def draw():
    random.seed(7)
    jitter = np.random.random()
    return random.random() + jitter
