"""Compliant twin: seeded instances only."""

import random


def draw(seed):
    rng = random.Random(seed)
    return rng.random()
