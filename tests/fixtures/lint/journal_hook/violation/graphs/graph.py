"""Seeded journal-hook violations — every half of the protocol missed.

``add_edge`` mutates adjacency and the edge counter with neither a
version bump nor a journal record; ``remove_edge`` bumps the version but
forgets the journal; ``sneak_edge`` reaches into another object's
``_adj`` from outside any owning class.  Three findings.
"""


class Graph:
    def __init__(self):
        self._adj = {}
        self._version = 0
        self._journal = None
        self._num_edges = 0

    def add_edge(self, u, v):
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._num_edges += 1

    def remove_edge(self, u, v):
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1


def sneak_edge(graph, u, v):
    graph._adj[u][v] = None
