"""Compliant twin: the full PR 8 mutation protocol, in miniature.

Every mutator bumps ``self._version`` *and* records a delta in
``self._journal``; ``copy`` builds a clone by writing ``clone._adj``
from inside the owning class (sanctioned — that is how fresh instances
get populated), and read-only helpers touch nothing.
"""


class _Journal:
    def __init__(self):
        self.entries = []

    def record(self, version, delta):
        self.entries.append((version, delta))


class Graph:
    def __init__(self):
        self._adj = {}
        self._version = 0
        self._journal = _Journal()
        self._num_edges = 0

    def add_edge(self, u, v):
        if u not in self._adj:
            self._adj[u] = {}
        if v not in self._adj:
            self._adj[v] = {}
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._num_edges += 1
        self._version += 1
        self._journal.record(self._version, ("add", u, v))

    def remove_edge(self, u, v):
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1
        self._journal.record(self._version, ("delete", u, v))

    def neighbours(self, u):
        return sorted(self._adj.get(u, ()))

    def copy(self):
        clone = Graph()
        for u, adjacency in self._adj.items():
            clone._adj[u] = dict(adjacency)
        clone._num_edges = self._num_edges
        clone._version = self._version
        return clone
