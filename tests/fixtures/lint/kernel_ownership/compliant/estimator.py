"""Compliant twin: drives the public sweep APIs."""

from repro.graphs.csr import as_csr, multi_source_sweep


def distances(graph, roots):
    snapshot = as_csr(graph)
    return multi_source_sweep(snapshot, roots, kind="distance")
