"""A kernel module: the whitelist lets it own the expansion loop."""


class _BatchSweep:
    def __init__(self, frontier):
        self.frontier = frontier

    def run(self, neighbors):
        dist = {node: 0 for node in self.frontier}
        frontier = list(self.frontier)
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in neighbors(node):
                    if neighbor not in dist:
                        dist[neighbor] = dist[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return dist
