"""Violation twin: a private BFS copy outside the kernel modules."""

from repro.graphs.csr import _BatchSweep


def private_bfs(graph, root):
    dist = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return dist


def private_sweep(snapshot, roots):
    import repro.graphs.csr as csr_module

    return csr_module._BatchSweep(snapshot, roots)
