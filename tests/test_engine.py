"""Tests for the unified sampling engine (`repro.engine`).

Covers the schedule arithmetic, the stopping rules, the driver's chunk
bookkeeping, the cross-sample source-DAG cache (hit/miss accounting, LRU
bound, eviction on graph mutation), the direction-optimising BFS step, and
the deterministic ranking tie-break satellite.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.ranking import rank_scores
from repro.engine import (
    SampleDriver,
    SampleSchedule,
    SourceDAGCache,
    dag_cache_enabled,
    set_dag_cache_enabled,
)
from repro.engine.stopping import (
    AllocatedBernsteinRule,
    BernsteinSumsRule,
    FixedSampleRule,
    HitCountRule,
)
from repro.graphs import csr as csr_module
from repro.graphs.generators import (
    barabasi_albert_graph,
    cycle_graph,
    grid_road_graph,
)


class TestSampleSchedule:
    def test_geometric_targets(self):
        assert list(SampleSchedule(32, 200).targets()) == [32, 64, 128, 200]

    def test_non_doubling_growth(self):
        schedule = SampleSchedule(10, 100, growth=3.0)
        assert list(schedule.targets()) == [10, 30, 90, 100]

    def test_fixed_is_single_stage(self):
        schedule = SampleSchedule.fixed(50)
        assert list(schedule.targets()) == [50]
        assert schedule.num_stages() == 1

    def test_first_stage_clamped_to_cap(self):
        schedule = SampleSchedule(100, 40)
        assert schedule.first_stage == 40
        assert list(schedule.targets()) == [40]

    def test_from_guarantee_matches_baseline_formula(self):
        # epsilon=0.1, delta=0.1 -> ceil(0.5/0.01 * ln 10) = 116
        schedule = SampleSchedule.from_guarantee(0.1, 0.1, 1000)
        assert schedule.first_stage == 116
        assert schedule.max_samples == 1000
        tiny = SampleSchedule.from_guarantee(0.5, 0.5, 1000)
        assert tiny.first_stage == 32  # the min_first_stage floor

    def test_num_stages_doubling(self):
        assert SampleSchedule(32, 200).num_stages() == 3
        assert SampleSchedule(32, 32).num_stages() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleSchedule(0, 10)
        with pytest.raises(ValueError):
            SampleSchedule(1, 0)
        with pytest.raises(ValueError):
            SampleSchedule(1, 10, growth=1.0)


class TestStoppingRules:
    def test_fixed_never_stops(self):
        rule = FixedSampleRule()
        assert not rule.should_stop(10**9)
        assert rule.converged_label == rule.cap_label == "fixed"

    def test_bernstein_sums_zero_variance_stops(self):
        totals = {"a": 0.0, "b": 0.0}
        totals_sq = {"a": 0.0, "b": 0.0}
        rule = BernsteinSumsRule(
            totals, totals_sq, epsilon=0.1, per_check_delta=0.01
        )
        assert not rule.should_stop(1)  # needs >= 2 samples
        assert rule.should_stop(10_000)

    def test_bernstein_sums_high_variance_keeps_going(self):
        # Alternating 0/1 losses: variance ~ 0.25, far above epsilon at N=64.
        totals = {"a": 32.0}
        totals_sq = {"a": 32.0}
        rule = BernsteinSumsRule(
            totals, totals_sq, epsilon=0.01, per_check_delta=0.01
        )
        assert not rule.should_stop(64)

    def test_hit_count_rule(self):
        counts = {"a": 0.0, "b": 0.0}
        rule = HitCountRule(counts, epsilon=0.01, per_check_delta=0.01)
        assert rule.should_stop(10_000)
        counts["b"] = 5_000.0  # half the samples hit b -> variance ~ 0.25
        assert not rule.should_stop(10_000)

    def test_allocated_rule_records_deviations(self):
        from repro.core.adaptive import _RiskAccumulator

        accumulator = _RiskAccumulator(2)
        for _ in range(10_000):
            accumulator.add({0: 1.0})
        rule = AllocatedBernsteinRule(
            accumulator, [0.01, 0.01], epsilon=0.05
        )
        stopped = rule.should_stop(accumulator.count)
        assert len(rule.deviations) == 2
        assert all(dev >= 0.0 for dev in rule.deviations)
        # Zero variance on both hypotheses: only the 1/(N-1) term remains.
        assert stopped


def _counting_chunk(payload, piece):
    """Module-level chunk task: returns its piece so folds can record it."""
    return piece


class TestSampleDriver:
    def test_chunk_indices_continue_across_batches(self):
        seen = []
        with SampleDriver(_counting_chunk, chunk_size=10) as driver:
            driver.run_batch(25, seen.append)
            driver.run_batch(15, seen.append)
        assert seen == [(0, 10), (1, 10), (2, 5), (3, 10), (4, 5)]

    def test_run_schedule_stops_adaptively(self):
        class StopAtSecondCheck:
            converged_label = "adaptive"
            cap_label = "cap"

            def __init__(self):
                self.checks = 0

            def should_stop(self, num_samples):
                self.checks += 1
                return self.checks >= 2

        seen = []
        with SampleDriver(_counting_chunk, chunk_size=100) as driver:
            outcome = driver.run_schedule(
                SampleSchedule(10, 1000), StopAtSecondCheck(), seen.append
            )
        assert outcome.num_samples == 20
        assert outcome.num_stages == 2
        assert outcome.converged_by == "adaptive"
        assert seen == [(0, 10), (1, 10)]

    def test_run_schedule_hits_cap(self):
        with SampleDriver(_counting_chunk, chunk_size=100) as driver:
            outcome = driver.run_schedule(
                SampleSchedule(10, 40), FixedSampleRule(), lambda piece: None
            )
        assert outcome.num_samples == 40
        assert outcome.converged_by == "fixed"
        assert outcome.num_stages == 3  # 10 -> 20 -> 40


class TestSourceDAGCache:
    def test_hit_miss_accounting_and_identity(self):
        cache = SourceDAGCache(max_entries=8)
        graph = cycle_graph(8)
        first = cache.dag(graph, 0, backend="dict")
        second = cache.dag(graph, 0, backend="dict")
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        cache.dag(graph, 1, backend="dict")
        assert cache.misses == 2
        assert cache.stats()["entries"] == 2

    def test_backends_cached_separately(self):
        cache = SourceDAGCache(max_entries=8)
        graph = barabasi_albert_graph(60, 2, seed=0)
        dict_dag = cache.dag(graph, 0, backend="dict")
        csr_dag = cache.dag(graph, 0, backend="csr")
        assert cache.misses == 2
        assert dict_dag is not csr_dag
        assert dict_dag.sigma[1] == int(csr_dag.sigma[csr_dag.csr.index[1]])

    def test_eviction_on_version_bump(self):
        cache = SourceDAGCache(max_entries=8)
        graph = cycle_graph(6)
        stale = cache.dag(graph, 0, backend="dict")
        graph.add_edge(0, 3)  # mutation bumps Graph._version
        fresh = cache.dag(graph, 0, backend="dict")
        assert fresh is not stale
        assert fresh.distances != stale.distances
        assert cache.evictions == 1

    def test_lru_bound(self):
        cache = SourceDAGCache(max_entries=2)
        graph = cycle_graph(6)
        for source in (0, 1, 2):
            cache.dag(graph, source, backend="dict")
        assert cache.stats()["entries"] == 2
        assert cache.evictions == 1
        # Source 0 was evicted (least recently used) -> a fresh miss.
        cache.dag(graph, 0, backend="dict")
        assert cache.misses == 4

    def test_cost_budget_bound(self):
        from repro.engine import dag_cache as module

        graph = cycle_graph(12)
        one = module._entry_cost(
            SourceDAGCache.compute_dag(graph, 0, backend="dict")
        )
        cache = SourceDAGCache(max_entries=8, max_cost=2 * one)
        for source in (0, 1, 2):
            cache.dag(graph, source, backend="dict")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["cost"] <= 2 * one
        assert cache.evictions == 1
        # Source 0 was evicted (least recently used) -> a fresh miss.
        cache.dag(graph, 0, backend="dict")
        assert cache.misses == 4

    def test_oversized_entry_still_cached(self):
        # A single traversal bigger than the whole budget stays resident:
        # the budget degrades the cache to ~one live traversal, never zero.
        cache = SourceDAGCache(max_entries=8, max_cost=1)
        graph = cycle_graph(10)
        first = cache.dag(graph, 0, backend="dict")
        assert cache.dag(graph, 0, backend="dict") is first
        cache.dag(graph, 1, backend="dict")  # over budget -> evicts source 0
        assert cache.stats()["entries"] == 1
        assert cache.evictions == 1

    def test_budget_env_knob(self, monkeypatch):
        from repro.engine import dag_cache as module

        monkeypatch.setenv(module.DAG_CACHE_BUDGET_ENV_VAR, "123")
        assert SourceDAGCache().max_cost == 123
        monkeypatch.setenv(module.DAG_CACHE_BUDGET_ENV_VAR, "0")
        with pytest.raises(ValueError, match="REPRO_DAG_CACHE_BUDGET"):
            SourceDAGCache()

    def test_override_mirrors_into_environment(self, monkeypatch):
        # Spawned workers re-import the module and resolve from the
        # environment, so the override must be mirrored there.
        from repro.engine import dag_cache as module

        monkeypatch.setenv(module.DAG_CACHE_ENV_VAR, "on")
        try:
            set_dag_cache_enabled(False)
            assert os.environ[module.DAG_CACHE_ENV_VAR] == "0"
            set_dag_cache_enabled(True)
            assert os.environ[module.DAG_CACHE_ENV_VAR] == "1"
        finally:
            set_dag_cache_enabled(None)
        assert os.environ[module.DAG_CACHE_ENV_VAR] == "on"

    def test_size_and_budget_overrides(self, monkeypatch):
        # The PR-7 knob surface: set_default_dag_cache_size/budget follow
        # the full protocol — validated, env-mirrored, displaced-value
        # restore, and new caches are built with the resolved bounds.
        from repro.engine import dag_cache as module

        monkeypatch.setenv(module.DAG_CACHE_SIZE_ENV_VAR, "64")
        monkeypatch.delenv(module.DAG_CACHE_BUDGET_ENV_VAR, raising=False)
        try:
            module.set_default_dag_cache_size(9)
            module.set_default_dag_cache_budget(777)
            assert os.environ[module.DAG_CACHE_SIZE_ENV_VAR] == "9"
            assert os.environ[module.DAG_CACHE_BUDGET_ENV_VAR] == "777"
            assert module.resolve_dag_cache_size() == 9
            assert module.resolve_dag_cache_budget() == 777
            cache = SourceDAGCache()
            assert cache.max_entries == 9 and cache.max_cost == 777
        finally:
            module.set_default_dag_cache_size(None)
            module.set_default_dag_cache_budget(None)
        # The displaced env value is restored and back in charge.
        assert os.environ[module.DAG_CACHE_SIZE_ENV_VAR] == "64"
        assert module.resolve_dag_cache_size() == 64
        assert module.DAG_CACHE_BUDGET_ENV_VAR not in os.environ
        assert module.resolve_dag_cache_budget() == module.DEFAULT_DAG_CACHE_BUDGET

    def test_size_and_budget_override_validation(self):
        from repro.engine import dag_cache as module

        with pytest.raises(ValueError, match="dag_cache_size"):
            module.set_default_dag_cache_size(0)
        with pytest.raises(TypeError, match="dag_cache_budget"):
            module.set_default_dag_cache_budget(True)

    def test_enabled_check_eagerly_validates_bounds(self, monkeypatch):
        # dag_cache_enabled() is the first knob touch on the hot path;
        # a typo'd bound surfaces there, naming the variable.
        from repro.engine import dag_cache as module

        monkeypatch.setenv(module.DAG_CACHE_SIZE_ENV_VAR, "huge")
        with pytest.raises(ValueError, match=module.DAG_CACHE_SIZE_ENV_VAR):
            dag_cache_enabled()

    def test_distance_rows_batched_misses_then_hits(self):
        cache = SourceDAGCache(max_entries=16)
        graph = grid_road_graph(6, 6, seed=0)[0]
        nodes = list(graph.nodes())[:4]
        rows = cache.distance_rows(graph, nodes)
        assert cache.misses == 4 and cache.hits == 0
        again = cache.distance_rows(graph, nodes)
        assert cache.hits == 4
        for row, row2 in zip(rows, again):
            assert row is row2
        # Rows equal the per-source kernel output.
        snapshot = csr_module.as_csr(graph)
        for node, row in zip(nodes, rows):
            dist, _ = csr_module.csr_bfs(snapshot, snapshot.index_of(node))
            assert list(row) == list(dist)

    def test_rejects_unresolved_backend(self):
        cache = SourceDAGCache(max_entries=2)
        with pytest.raises(ValueError):
            cache.dag(cycle_graph(4), 0, backend="auto")

    def test_enabled_override_round_trip(self):
        original = dag_cache_enabled()
        try:
            set_dag_cache_enabled(False)
            assert not dag_cache_enabled()
            set_dag_cache_enabled(True)
            assert dag_cache_enabled()
        finally:
            set_dag_cache_enabled(None)
        assert dag_cache_enabled() == original

    def test_invalid_env_values_rejected(self, monkeypatch):
        from repro.engine import dag_cache as module

        monkeypatch.setenv(module.DAG_CACHE_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match="REPRO_DAG_CACHE"):
            dag_cache_enabled()
        monkeypatch.setenv(module.DAG_CACHE_SIZE_ENV_VAR, "-3")
        with pytest.raises(ValueError, match="REPRO_DAG_CACHE_SIZE"):
            SourceDAGCache()


@pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="bottom-up needs numpy")
class TestDirectionOptimising:
    @pytest.mark.parametrize(
        "make_graph",
        [
            pytest.param(lambda: barabasi_albert_graph(3000, 4, seed=1), id="ba"),
            pytest.param(lambda: grid_road_graph(40, 40, seed=1)[0], id="grid"),
        ],
    )
    def test_distance_rows_identical(self, make_graph):
        graph = make_graph()
        snapshot = csr_module.as_csr(graph)
        sources = list(range(0, snapshot.n, max(1, snapshot.n // 16)))[:16]
        top_down = csr_module.multi_source_sweep(
            snapshot, sources, kind="distance", direction="top-down"
        )
        auto = csr_module.multi_source_sweep(
            snapshot, sources, kind="distance", direction="auto"
        )
        for reference, candidate in zip(top_down, auto):
            assert list(reference) == list(candidate)

    def test_bottom_up_actually_fires_on_fat_levels(self):
        graph = barabasi_albert_graph(3000, 4, seed=1)
        snapshot = csr_module.as_csr(graph)
        # repro-lint: disable=kernel-ownership — audited: unit test exercising the kernel itself
        sweep = csr_module._BatchSweep(
            snapshot, list(range(8)), direction="auto"
        )
        while sweep.has_frontier:
            sweep.expand()
        assert sweep.bottom_up_levels > 0  # the equivalence test above bites

    def test_auto_rejected_for_order_sensitive_sweeps(self):
        graph = cycle_graph(8)
        snapshot = csr_module.as_csr(graph)
        with pytest.raises(ValueError):
            # repro-lint: disable=kernel-ownership — audited: unit test exercising the kernel itself
            csr_module._BatchSweep(
                snapshot, (0,), sigma_mode="int", direction="auto"
            )
        with pytest.raises(ValueError):
            csr_module.multi_source_sweep(
                snapshot, (0,), kind="brandes", direction="auto"
            )
        with pytest.raises(ValueError):
            csr_module.multi_source_sweep(
                snapshot, (0,), kind="distance", direction="sideways"
            )


class TestRankingTieBreak:
    """Satellite: equal-score orders are a pure function of the mapping."""

    def test_insertion_order_never_leaks(self):
        scores = {3: 0.5, 1: 0.5, 2: 0.7, 0: 0.5}
        orders = set()
        items = list(scores.items())
        for seed in range(10):
            random.Random(seed).shuffle(items)
            orders.add(tuple(rank_scores(dict(items))))
        assert orders == {(2, 0, 1, 3)}

    def test_mixed_type_names_are_deterministic(self):
        scores = {"b": 0.5, 1: 0.5, "a": 0.5, 2: 0.9}
        first = rank_scores(scores)
        second = rank_scores(dict(reversed(list(scores.items()))))
        assert first == second
        assert first[0] == 2  # highest score still leads

    def test_baseline_result_ranking_uses_shared_tie_break(self):
        from repro.baselines.base import BaselineResult

        result = BaselineResult(
            algorithm="test",
            scores={5: 0.1, 3: 0.1, 4: 0.2, 1: 0.1},
            num_samples=1,
            epsilon=0.1,
            delta=0.1,
        )
        assert result.ranking() == [4, 1, 3, 5]
        assert result.ranking([5, 3]) == [3, 5]
