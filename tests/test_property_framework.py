"""Property-based tests of the generic SaPHyRa framework on random
enumerated problems with known ground truth."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypothesis import SetMembershipHypothesisClass
from repro.core.problem import EnumeratedProblem
from repro.core.sample_space import EnumeratedSampleSpace, WeightedSample
from repro.core.saphyra import SaPHyRa
from repro.metrics.rank_correlation import spearman_rank_correlation


def random_problem(seed: int) -> EnumeratedProblem:
    """A random discrete hypothesis-ranking problem.

    Samples are integers with random (normalised) probabilities; each of the
    3-6 hypotheses fires on a random subset of the samples; a random slice of
    the samples forms the exact subspace.
    """
    rng = random.Random(seed)
    num_samples = rng.randint(10, 60)
    raw_weights = [rng.random() + 1e-3 for _ in range(num_samples)]
    total = sum(raw_weights)
    values = list(range(num_samples))
    samples = [
        WeightedSample(value, weight / total)
        for value, weight in zip(values, raw_weights)
    ]
    num_hypotheses = rng.randint(3, 6)
    firing_sets = {
        name: {value for value in values if rng.random() < rng.uniform(0.05, 0.6)}
        for name in range(num_hypotheses)
    }
    exact_fraction = rng.uniform(0.0, 0.5)
    exact_threshold = int(exact_fraction * num_samples)
    space = EnumeratedSampleSpace(
        samples, is_exact=lambda value: value < exact_threshold
    )
    hypotheses = SetMembershipHypothesisClass(
        list(firing_sets),
        keys_of=lambda value: [
            name for name, fired in firing_sets.items() if value in fired
        ],
    )
    return EnumeratedProblem(space, hypotheses)


class TestFrameworkProperties:
    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=15, deadline=None)
    def test_estimates_within_epsilon(self, seed):
        problem = random_problem(seed)
        truth = problem.true_risks()
        epsilon = 0.08
        result = SaPHyRa(epsilon=epsilon, delta=0.05, seed=seed).rank(problem)
        for name, risk in zip(result.names, result.risks):
            # 2x slack keeps the probabilistic guarantee from flaking.
            assert abs(risk - truth[name]) < 2 * epsilon

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=15, deadline=None)
    def test_combination_identity_and_bounds(self, seed):
        problem = random_problem(seed)
        result = SaPHyRa(epsilon=0.1, delta=0.1, seed=seed).rank(problem)
        assert 0.0 <= result.lambda_exact <= 1.0
        for combined, exact, approx in zip(
            result.risks, result.exact_risks, result.approximate_risks
        ):
            assert abs(combined - (exact + result.lambda_approximate * approx)) < 1e-9
            assert -1e-9 <= combined <= 1.0 + 1e-9

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=10, deadline=None)
    def test_ranking_correlates_with_truth(self, seed):
        problem = random_problem(seed)
        truth = problem.true_risks()
        result = SaPHyRa(epsilon=0.03, delta=0.05, seed=seed).rank(problem)
        correlation = spearman_rank_correlation(truth, result.scores())
        # With epsilon much smaller than typical risk gaps the ranking should
        # be strongly correlated; allow slack for adversarial near-ties.
        assert correlation > 0.2

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=10, deadline=None)
    def test_exact_risks_never_exceed_combined(self, seed):
        problem = random_problem(seed)
        result = SaPHyRa(epsilon=0.1, delta=0.1, seed=seed).rank(problem)
        for combined, exact in zip(result.risks, result.exact_risks):
            assert combined >= exact - 1e-9
