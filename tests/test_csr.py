"""Tests for the CSR graph engine: snapshots, caching and backend selection."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError, SamplingError
from repro.graphs import csr as csr_module
from repro.graphs import delta as delta_module
from repro.graphs.csr import (
    AUTO_CSR_THRESHOLD,
    CSRGraph,
    as_csr,
    csr_bfs,
    csr_brandes,
    csr_distance_stats,
    csr_shortest_path_dag,
    default_backend,
    effective_backend,
    resolve_backend,
    set_default_backend,
    sigma_choice,
)
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, shortest_path_dag


@pytest.fixture(autouse=True)
def _reset_default_backend(monkeypatch):
    # A REPRO_BACKEND exported in the invoking shell would override the
    # auto-selection behaviour these tests assert on.
    monkeypatch.delenv(csr_module.BACKEND_ENV_VAR, raising=False)
    yield
    set_default_backend(None)


class TestCSRGraph:
    def test_structure_matches_adjacency(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        snapshot = CSRGraph.from_graph(graph)
        assert snapshot.n == 4
        assert snapshot.m == 4
        assert list(snapshot.indptr) == [0, 2, 4, 7, 8]
        for node in graph.nodes():
            index = snapshot.index[node]
            neighbors = [
                snapshot.labels[j] for j in snapshot.neighbors(index)
            ]
            assert neighbors == list(graph.neighbors(node))
            assert snapshot.degree(index) == graph.degree(node)

    def test_labels_keep_insertion_order(self):
        graph = Graph.from_edges([("c", "a"), ("a", "b")])
        snapshot = CSRGraph.from_graph(graph)
        assert snapshot.labels == ["c", "a", "b"]
        assert not snapshot.identity_labels

    def test_identity_labels_detected(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert CSRGraph.from_graph(graph).identity_labels

    def test_index_of_missing_node_raises(self):
        snapshot = CSRGraph.from_graph(path_graph(3))
        with pytest.raises(GraphError):
            snapshot.index_of(99)

    def test_isolated_nodes_round_trip(self):
        graph = Graph.from_edges([(0, 1)], nodes=[5])
        snapshot = CSRGraph.from_graph(graph)
        assert snapshot.n == 3
        assert snapshot.degree(snapshot.index[5]) == 0


class TestAsCSRCaching:
    def test_snapshot_is_cached(self):
        graph = path_graph(6)
        assert as_csr(graph) is as_csr(graph)

    def test_mutation_invalidates_cache(self):
        graph = path_graph(6)
        first = as_csr(graph)
        graph.add_edge(0, 5)
        second = as_csr(graph)
        assert second is not first
        assert second.m == first.m + 1
        assert as_csr(graph) is second

    def test_node_and_edge_removal_invalidate(self):
        graph = path_graph(6)
        first = as_csr(graph)
        graph.remove_edge(0, 1)
        second = as_csr(graph)
        assert second is not first
        graph.remove_node(5)
        third = as_csr(graph)
        assert third is not second
        assert third.n == 5


class TestBackendSelection:
    def test_resolve_explicit(self):
        assert resolve_backend("dict") == "dict"
        assert resolve_backend("csr") == "csr"

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("sparse")

    def test_set_default_backend(self):
        set_default_backend("dict")
        assert default_backend() == "dict"
        assert resolve_backend(None) == "dict"
        set_default_backend(None)

    def test_set_default_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_backend("sparse")

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(csr_module.BACKEND_ENV_VAR, "dict")
        assert default_backend() == "dict"
        monkeypatch.setenv(csr_module.BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            default_backend()

    def test_auto_is_a_valid_choice_everywhere(self, monkeypatch):
        # REPRO_BACKEND=auto must behave like the built-in default ...
        monkeypatch.setenv(csr_module.BACKEND_ENV_VAR, "auto")
        assert default_backend() == "auto"
        assert effective_backend(path_graph(3), None) in ("dict", "csr")
        # ... and set_default_backend("auto") must override the env var,
        # which is how `--backend auto` beats a stale REPRO_BACKEND=dict.
        monkeypatch.setenv(csr_module.BACKEND_ENV_VAR, "dict")
        set_default_backend("auto")
        assert default_backend() == "auto"

    def test_effective_backend_explicit_always_wins(self):
        tiny = path_graph(3)
        assert effective_backend(tiny, "csr") == "csr"
        assert effective_backend(tiny, "dict") == "dict"

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_effective_backend_auto_scales_with_size(self):
        tiny = path_graph(3)
        assert effective_backend(tiny, None) == "dict"
        big = path_graph(AUTO_CSR_THRESHOLD)
        assert effective_backend(big, None) == "csr"

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_effective_backend_auto_reuses_cached_snapshot(self):
        tiny = path_graph(4)
        assert effective_backend(tiny, None) == "dict"
        as_csr(tiny)
        assert effective_backend(tiny, None) == "csr"

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_effective_backend_auto_ignores_unpatchable_stale_snapshot(self):
        # Regression: the auto heuristic used to probe `graph in cache`
        # without checking the snapshot's version, so a small graph mutated
        # after snapshotting was still routed to CSR (forcing a pointless
        # re-freeze on every query).  With the mutation journal disabled the
        # stale snapshot cannot be patched, so the historical behaviour must
        # hold: fall back to the dict kernels.
        delta_module.set_default_dag_cache_delta("off")
        try:
            tiny = path_graph(4)
            as_csr(tiny)
            tiny.add_edge(0, 3)
            assert effective_backend(tiny, None) == "dict"
        finally:
            delta_module.set_default_dag_cache_delta(None)

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_effective_backend_auto_keeps_patchable_stale_snapshot(self):
        # With the mutation journal covering the gap the stale snapshot is
        # one cheap incremental patch away, so auto stays on the array
        # kernels instead of demoting the graph to dict traversals.
        delta_module.set_default_dag_cache_delta("auto")
        try:
            tiny = path_graph(4)
            as_csr(tiny)
            tiny.add_edge(0, 3)
            assert effective_backend(tiny, None) == "csr"
            fresh = csr_module.CSRGraph.from_graph(tiny)
            patched = as_csr(tiny)
            assert patched.indptr.tobytes() == fresh.indptr.tobytes()
            assert patched.indices.tobytes() == fresh.indices.tobytes()
        finally:
            delta_module.set_default_dag_cache_delta(None)

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_effective_backend_evicts_unpatchable_stale_cache_entry(self):
        # Without journal coverage the stale snapshot must also be dropped
        # so mutate/query cycles cannot keep dead array copies alive.
        delta_module.set_default_dag_cache_delta("off")
        try:
            tiny = path_graph(4)
            as_csr(tiny)
            tiny.add_edge(0, 3)
            effective_backend(tiny, None)
            assert csr_module._csr_cache.get(tiny) is None
        finally:
            delta_module.set_default_dag_cache_delta(None)

    def test_resolve_backend_rejects_bad_env_eagerly(self, monkeypatch):
        # A typo'd REPRO_BACKEND must surface as one clear error naming the
        # variable at the next dispatch, not as a deep-stack failure.
        monkeypatch.setenv(csr_module.BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=csr_module.BACKEND_ENV_VAR):
            resolve_backend(None)
        with pytest.raises(ValueError, match=csr_module.BACKEND_ENV_VAR):
            resolve_backend("csr")

    def test_backend_errors_name_the_env_var(self):
        with pytest.raises(ValueError, match=csr_module.BACKEND_ENV_VAR):
            resolve_backend("sparse")
        with pytest.raises(ValueError, match=csr_module.BACKEND_ENV_VAR):
            set_default_backend("sparse")


class TestSigmaChoice:
    def test_distribution_roughly_proportional(self):
        rng = random.Random(3)
        counts = {"a": 0, "b": 0}
        for _ in range(3000):
            counts[sigma_choice(["a", "b"], [1, 3], rng)] += 1
        assert 550 < counts["a"] < 950

    def test_zero_total_raises(self):
        with pytest.raises(SamplingError):
            sigma_choice(["a"], [0], random.Random(0))

    def test_huge_integer_weights_stay_exact(self):
        # Float accumulation would collapse 2**60 and 2**60 + 1; the integer
        # threshold keeps them distinguishable and the choice well defined.
        rng = random.Random(5)
        items = ["low", "high"]
        weights = [1, 2**60]
        picks = {sigma_choice(items, weights, rng) for _ in range(50)}
        assert picks == {"high"}

    def test_single_item(self):
        assert sigma_choice(["only"], [7], random.Random(1)) == "only"

    def test_length_mismatch_raises(self):
        # Regression: `zip` used to truncate silently and the `items[-1]`
        # fallback masked the mismatch, returning an arbitrary item.
        with pytest.raises(SamplingError, match="3 items but 2 weights"):
            sigma_choice(["a", "b", "c"], [1, 2], random.Random(0))
        with pytest.raises(SamplingError, match="1 items but 2 weights"):
            sigma_choice(["a"], [1, 2], random.Random(0))


class TestKernels:
    def test_csr_bfs_matches_dict(self):
        graph = erdos_renyi_graph(40, 0.15, seed=1)
        snapshot = as_csr(graph)
        for source in list(graph.nodes())[:5]:
            dist, order = csr_bfs(snapshot, snapshot.index[source])
            reference = bfs_distances(graph, source, backend="dict")
            order_labels = [snapshot.labels[i] for i in
                            (order.tolist() if csr_module.HAS_NUMPY else order)]
            assert order_labels == list(reference)
            for node, hops in reference.items():
                assert dist[snapshot.index[node]] == hops

    def test_distance_stats(self):
        graph = Graph.from_edges([(0, 1), (1, 2)], nodes=[9])
        snapshot = as_csr(graph)
        reachable, total = csr_distance_stats(snapshot, snapshot.index[0])
        assert (reachable, total) == (3, 3)

    def test_brandes_path_graph(self):
        graph = path_graph(5)
        snapshot = as_csr(graph)
        delta, order, dist = csr_brandes(snapshot, 0)
        # On a path, dependency of the source on node i is the number of
        # nodes beyond it: delta(1) = 3, delta(2) = 2, delta(3) = 1.
        assert [round(float(delta[i]), 6) for i in (1, 2, 3, 4)] == [3, 2, 1, 0]

    def test_dag_sampling_consumes_rng_like_dict(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        snapshot = as_csr(graph)
        dag_index = csr_shortest_path_dag(snapshot, 0)
        dag_label = shortest_path_dag(graph, 0, backend="dict")
        for seed in range(10):
            indices = dag_index.sample_path_indices(4, random.Random(seed))
            labels = dag_label.sample_path(4, random.Random(seed))
            assert [snapshot.labels[i] for i in indices] == labels

    def test_unreachable_target_raises(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        snapshot = as_csr(graph)
        dag = csr_shortest_path_dag(snapshot, snapshot.index[0])
        with pytest.raises(SamplingError):
            dag.sample_path_indices(snapshot.index[2], random.Random(0))


class TestPurePythonFallback:
    """The csr backend must stay functional without numpy."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(csr_module, "HAS_NUMPY", False)
        yield

    def test_snapshot_and_kernels(self, no_numpy):
        graph = erdos_renyi_graph(30, 0.2, seed=3)
        snapshot = CSRGraph.from_graph(graph)
        source = next(iter(graph.nodes()))
        dist, order = csr_bfs(snapshot, snapshot.index[source])
        reference = bfs_distances(graph, source, backend="dict")
        assert [snapshot.labels[i] for i in order] == list(reference)
        delta, brandes_order, _ = csr_brandes(snapshot, snapshot.index[source])
        from repro.centrality.brandes import single_source_dependencies

        expected = single_source_dependencies(graph, source, backend="dict")
        for node, value in expected.items():
            assert delta[snapshot.index[node]] == pytest.approx(value, abs=1e-12)

    def test_dag_sampling(self, no_numpy):
        graph = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        snapshot = CSRGraph.from_graph(graph)
        dag = csr_shortest_path_dag(snapshot, 0)
        assert dag.sigma[3] == 2
        path = dag.sample_path_indices(3, random.Random(0))
        assert path[0] == 0 and path[-1] == 3 and len(path) == 3
