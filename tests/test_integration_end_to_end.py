"""End-to-end integration tests crossing all the layers of the library.

These are the "does the whole paper pipeline hang together" checks: build a
synthetic dataset, compute ground truth, run SaPHyRa_bc and the baselines,
and verify both the (epsilon, delta) guarantee and the paper's qualitative
claims (no false zeros, ranking quality at least as good as the baselines,
subset runs cheaper than full runs).
"""

from __future__ import annotations

import pytest

from repro.baselines import KADABRA
from repro.centrality.brandes import betweenness_centrality
from repro.datasets import load, random_subset
from repro.metrics import (
    classify_zeros,
    estimation_within_epsilon,
    spearman_rank_correlation,
)
from repro.saphyra_bc import SaPHyRaBC


@pytest.fixture(scope="module")
def flickr_small():
    dataset = load("flickr", scale=0.15, seed=1)
    truth = betweenness_centrality(dataset.graph)
    return dataset, truth


@pytest.fixture(scope="module")
def road_small():
    dataset = load("usa-road", scale=0.3, seed=1)
    truth = betweenness_centrality(dataset.graph)
    return dataset, truth


class TestSocialPipeline:
    def test_subset_ranking_guarantee_and_quality(self, flickr_small):
        dataset, truth = flickr_small
        targets = random_subset(dataset.graph, 40, seed=5)
        truth_subset = {node: truth[node] for node in targets}

        result = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=17).rank(
            dataset.graph, targets
        )
        assert estimation_within_epsilon(truth_subset, result.scores, 0.05)
        assert classify_zeros(truth_subset, result.scores).false_zeros == 0
        assert spearman_rank_correlation(truth_subset, result.scores) > 0.8

    def test_saphyra_ranking_not_worse_than_kadabra(self, flickr_small):
        dataset, truth = flickr_small
        targets = random_subset(dataset.graph, 40, seed=6)
        truth_subset = {node: truth[node] for node in targets}

        saphyra = SaPHyRaBC(epsilon=0.1, delta=0.05, seed=3).rank(
            dataset.graph, targets
        )
        kadabra = KADABRA(epsilon=0.1, delta=0.05, seed=3).estimate(dataset.graph)
        saphyra_quality = spearman_rank_correlation(truth_subset, saphyra.scores)
        kadabra_quality = spearman_rank_correlation(
            truth_subset, kadabra.subset_scores(targets)
        )
        # The paper's headline claim, with a small slack for sampling noise on
        # the tiny test graph.
        assert saphyra_quality >= kadabra_quality - 0.05

    def test_subset_run_uses_fewer_samples_than_full(self, flickr_small):
        dataset, _ = flickr_small
        targets = random_subset(dataset.graph, 20, seed=9)
        subset_run = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=2).rank(
            dataset.graph, targets
        )
        full_run = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=2).rank(dataset.graph)
        assert subset_run.num_samples <= full_run.num_samples


class TestRoadPipeline:
    def test_geographic_subset_ranking(self, road_small):
        from repro.datasets import road_areas

        dataset, truth = road_small
        areas = road_areas(dataset.coordinates, graph=dataset.graph)
        nodes = areas["CO"]
        truth_subset = {node: truth[node] for node in nodes}
        result = SaPHyRaBC(epsilon=0.05, delta=0.05, seed=4).rank(dataset.graph, nodes)
        assert estimation_within_epsilon(truth_subset, result.scores, 0.05)
        assert spearman_rank_correlation(truth_subset, result.scores) > 0.8

    def test_road_graph_tiny_vc_dimension(self, road_small):
        """Road networks have tiny blocks, so the personalized VC bound is
        much smaller than the diameter-based bound (the Table I effect)."""
        from repro.graphs.diameter import estimate_diameter
        from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter

        dataset, _ = road_small
        targets = random_subset(dataset.graph, 25, seed=2)
        result = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=2).rank(dataset.graph, targets)
        diameter_vc = vc_from_hop_diameter(estimate_diameter(dataset.graph, seed=1))
        assert result.vc_dimension <= diameter_vc


class TestRepeatedGuarantee:
    def test_epsilon_delta_over_repetitions(self, flickr_small):
        """Run SaPHyRa_bc several times with different seeds; the fraction of
        runs violating the epsilon bound must be far below delta."""
        dataset, truth = flickr_small
        targets = random_subset(dataset.graph, 25, seed=1)
        truth_subset = {node: truth[node] for node in targets}
        epsilon, delta = 0.1, 0.2
        violations = 0
        runs = 10
        for seed in range(runs):
            result = SaPHyRaBC(epsilon=epsilon, delta=delta, seed=seed).rank(
                dataset.graph, targets
            )
            if not estimation_within_epsilon(truth_subset, result.scores, epsilon):
                violations += 1
        assert violations <= max(1, int(delta * runs))
