"""Tests for the empirical Bernstein bound and running statistics."""

from __future__ import annotations

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bernstein import (
    RunningStats,
    empirical_bernstein_bound,
    sample_variance,
)


class TestSampleVariance:
    def test_matches_statistics_module(self):
        data = [0.1, 0.4, 0.4, 0.9, 0.0, 1.0]
        assert sample_variance(data) == pytest.approx(statistics.variance(data))

    def test_constant_data(self):
        assert sample_variance([0.5] * 10) == pytest.approx(0.0)

    def test_fewer_than_two_values(self):
        assert sample_variance([]) == 0.0
        assert sample_variance([0.7]) == 0.0

    def test_pairwise_definition(self):
        # 1/(N(N-1)) sum_{j1<j2} (z_j1 - z_j2)^2 equals the unbiased variance.
        data = [0.0, 0.0, 1.0, 1.0, 1.0]
        n = len(data)
        pairwise = sum(
            (data[i] - data[j]) ** 2 for i in range(n) for j in range(i + 1, n)
        ) / (n * (n - 1))
        assert sample_variance(data) == pytest.approx(pairwise)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, data):
        assert sample_variance(data) >= 0.0


class TestEmpiricalBernsteinBound:
    def test_decreases_with_samples(self):
        small = empirical_bernstein_bound(100, 0.05, 0.1)
        large = empirical_bernstein_bound(10_000, 0.05, 0.1)
        assert large < small

    def test_increases_with_variance(self):
        low = empirical_bernstein_bound(1000, 0.05, 0.01)
        high = empirical_bernstein_bound(1000, 0.05, 0.25)
        assert high > low

    def test_decreases_with_delta(self):
        strict = empirical_bernstein_bound(1000, 0.001, 0.1)
        loose = empirical_bernstein_bound(1000, 0.1, 0.1)
        assert loose < strict

    def test_zero_variance_still_positive(self):
        assert empirical_bernstein_bound(1000, 0.05, 0.0) > 0.0

    def test_too_few_samples_infinite(self):
        assert empirical_bernstein_bound(1, 0.05, 0.1) == math.inf

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            empirical_bernstein_bound(100, 0.0, 0.1)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            empirical_bernstein_bound(100, 0.05, -0.1)

    def test_coverage_on_bernoulli_means(self):
        """The bound should cover the true mean far more often than 1-delta."""
        rng = random.Random(0)
        mean = 0.3
        delta = 0.1
        failures = 0
        trials = 200
        for _ in range(trials):
            samples = [1.0 if rng.random() < mean else 0.0 for _ in range(400)]
            estimate = sum(samples) / len(samples)
            bound = empirical_bernstein_bound(
                len(samples), delta, sample_variance(samples)
            )
            if abs(estimate - mean) > bound:
                failures += 1
        assert failures / trials <= 2 * delta


class TestRunningStats:
    def test_mean_and_variance_match_reference(self):
        data = [0.0, 1.0, 1.0, 0.0, 1.0, 0.5]
        stats = RunningStats()
        for value in data:
            stats.add(value)
        assert stats.mean() == pytest.approx(statistics.fmean(data))
        assert stats.variance() == pytest.approx(statistics.variance(data))

    def test_pad_zeros_equivalent_to_adding_zeros(self):
        padded = RunningStats()
        explicit = RunningStats()
        for value in (1.0, 1.0, 0.5):
            padded.add(value)
            explicit.add(value)
        padded.pad_zeros(7)
        for _ in range(7):
            explicit.add(0.0)
        assert padded.count == explicit.count
        assert padded.mean() == pytest.approx(explicit.mean())
        assert padded.variance() == pytest.approx(explicit.variance())

    def test_pad_zeros_negative_rejected(self):
        with pytest.raises(ValueError):
            RunningStats().pad_zeros(-1)

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.mean() == 0.0
        assert stats.variance() == 0.0
        assert stats.bernstein_epsilon(0.05) == math.inf

    def test_bernstein_epsilon_consistent(self):
        stats = RunningStats()
        for value in [0.0, 1.0] * 50:
            stats.add(value)
        direct = empirical_bernstein_bound(stats.count, 0.05, stats.variance())
        assert stats.bernstein_epsilon(0.05) == pytest.approx(direct)
