"""On-disk CSR snapshot store: format, knobs, handoff, persistence.

Covers the PR-10 out-of-core subsystem end to end:

* save/load/mmap roundtrip **byte-identity** against ``CSRGraph.from_graph``
  (``tobytes`` asserts), on unweighted, weighted, identity- and
  string-labelled graphs, under ``mmap`` auto/on/off and the pure-Python
  (no-numpy) fallback;
* corruption safety — truncation, bad magic, foreign endianness, stale
  format version, header/arrays checksum damage all raise ``GraphError``
  naming the path and the mismatch;
* the ``snapshot_dir``/``mmap`` knob protocol (arg > setter > env >
  default, env-mirrored setters);
* ``graph_from_snapshot`` adjacency-order-exact reconstruction and
  ``content_digest`` backend-independence;
* the datasets-registry memoisation, snapshot adoption into ``as_csr``,
  and the zero-copy snapshot-file worker handoff in ``repro.parallel``;
* the ``GroundTruthCache`` content-addressed disk tier, including
  bit-identical reuse across a real process boundary.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

import repro.parallel as parallel
from repro.centrality.brandes import betweenness_centrality
from repro.datasets import GroundTruthCache, load, load_csr
from repro.datasets.registry import dataset_key
from repro.errors import GraphError
from repro.experiments.config import ExperimentConfig
from repro.graphs import store
from repro.graphs.csr import CSRGraph, HAS_NUMPY, adopt_snapshot, as_csr, effective_backend
from repro.graphs.graph import Graph
from repro.graphs.store import (
    SnapshotStore,
    content_digest,
    graph_from_snapshot,
    load_snapshot,
    save_snapshot,
)

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")


def _bytes(arr) -> bytes:
    """Raw bytes of an int64/float64 array on either backend."""
    if arr is None:
        return b""
    if isinstance(arr, array):
        return arr.tobytes()
    import numpy as np

    return np.asarray(arr).tobytes()


def _snapshot_bytes(csr: CSRGraph) -> bytes:
    return _bytes(csr.indptr) + _bytes(csr.indices) + _bytes(csr.weights)


def _ordered_graph() -> Graph:
    # Insertion order is deliberately not sorted: node b's adjacency is
    # [c, a], which a naive label-order rebuild would flatten to [a, c].
    graph = Graph()
    for u, v in [("a", "c"), ("b", "c"), ("a", "b"), ("c", "d"), ("d", "e")]:
        graph.add_edge(u, v)
    return graph


def _weighted_graph() -> Graph:
    graph = Graph()
    graph.add_edge(0, 1, weight=2.5)
    graph.add_edge(1, 2, weight=0.125)
    graph.add_edge(0, 2)  # unit edge inside a weighted graph
    graph.add_edge(2, 3, weight=7.0)
    return graph


@pytest.fixture(autouse=True)
def _reset_knobs():
    yield
    store.set_default_snapshot_dir(None)
    store.set_default_mmap(None)


# ----------------------------------------------------------------------
# Roundtrip byte-identity
# ----------------------------------------------------------------------
class TestRoundtrip:
    @pytest.mark.parametrize("mmap", ["auto", "off"])
    def test_unweighted_roundtrip_bytes(self, tmp_path, mmap):
        graph = _ordered_graph()
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "g.csr"
        returned = csr.save(path)
        assert returned == path
        assert csr.source_path == str(path)
        loaded = CSRGraph.load(path, mmap=mmap, verify=True)
        assert loaded.labels == csr.labels
        assert loaded.n == csr.n and loaded.m == csr.m
        assert loaded.weights is None
        assert loaded.source_path == str(path)
        assert _snapshot_bytes(loaded) == _snapshot_bytes(csr)

    @pytest.mark.parametrize("mmap", ["auto", "off"])
    def test_weighted_roundtrip_bytes(self, tmp_path, mmap):
        csr = CSRGraph.from_graph(_weighted_graph())
        path = tmp_path / "w.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, mmap=mmap, verify=True)
        assert loaded.weights is not None
        assert _snapshot_bytes(loaded) == _snapshot_bytes(csr)
        assert loaded.weight_list() == csr.weight_list()

    def test_identity_labels_skip_blob(self, tmp_path):
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1), (1, 2)]))
        assert csr.identity_labels
        path = tmp_path / "ident.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, verify=True)
        assert loaded.identity_labels
        assert loaded.labels == [0, 1, 2]
        assert _snapshot_bytes(loaded) == _snapshot_bytes(csr)

    def test_empty_graph(self, tmp_path):
        csr = CSRGraph.from_graph(Graph())
        path = tmp_path / "empty.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, verify=True)
        assert loaded.n == 0 and loaded.m == 0

    def test_isolated_nodes(self, tmp_path):
        graph = Graph()
        graph.add_node("x")
        graph.add_node("y")
        graph.add_edge("y", "z")
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "iso.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, verify=True)
        assert loaded.labels == ["x", "y", "z"]
        assert _snapshot_bytes(loaded) == _snapshot_bytes(csr)

    @needs_numpy
    def test_mmap_views_are_readonly_memmaps(self, tmp_path):
        import numpy as np

        csr = CSRGraph.from_graph(_weighted_graph())
        path = tmp_path / "w.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, mmap="on")
        assert isinstance(loaded.indptr, np.memmap)
        assert isinstance(loaded.indices, np.memmap)
        assert isinstance(loaded.weights, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            loaded.indices[0] = 99

    @needs_numpy
    def test_mmap_off_reads_into_ram(self, tmp_path):
        import numpy as np

        csr = CSRGraph.from_graph(_ordered_graph())
        path = tmp_path / "g.csr"
        csr.save(path)
        loaded = CSRGraph.load(path, mmap="off")
        assert type(loaded.indptr) is np.ndarray

    def test_pure_python_fallback_roundtrip(self, tmp_path, monkeypatch):
        # Force the no-numpy branch of the store even on numpy machines:
        # stdlib-array writes and reads, byte-identical to the numpy form.
        graph = _weighted_graph()
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "w.csr"
        save_snapshot(csr, path)
        expected = _snapshot_bytes(csr)
        monkeypatch.setattr(store, "HAS_NUMPY", False)
        loaded = load_snapshot(path)
        assert isinstance(loaded.indptr, array)
        assert isinstance(loaded.weights, array)
        assert _snapshot_bytes(loaded) == expected
        # And pure-python saves reload under numpy too.
        repath = tmp_path / "re.csr"
        save_snapshot(loaded, repath)
        monkeypatch.setattr(store, "HAS_NUMPY", HAS_NUMPY)
        again = load_snapshot(repath, verify=True)
        assert _snapshot_bytes(again) == expected

    def test_explicit_mmap_on_without_numpy_raises(self, tmp_path, monkeypatch):
        csr = CSRGraph.from_graph(_ordered_graph())
        path = tmp_path / "g.csr"
        save_snapshot(csr, path)
        monkeypatch.setattr(store, "HAS_NUMPY", False)
        with pytest.raises(GraphError, match="mmap='on' requires numpy"):
            load_snapshot(path, mmap="on")
        # Knob-resolved "on" degrades silently (the shared-memory precedent).
        monkeypatch.setenv(store.MMAP_ENV_VAR, "on")
        loaded = load_snapshot(path)
        assert isinstance(loaded.indptr, array)

    def test_save_accepts_dict_graph(self, tmp_path):
        graph = _ordered_graph()
        path = save_snapshot(graph, tmp_path / "g.csr")
        assert _snapshot_bytes(load_snapshot(path, verify=True)) == _snapshot_bytes(
            as_csr(graph)
        )
        # Saving armed the graph's own cached snapshot for the file handoff.
        assert as_csr(graph).source_path == str(path)

    def test_effective_backend_accepts_loaded_snapshot(self, tmp_path):
        csr = CSRGraph.from_graph(_ordered_graph())
        path = tmp_path / "g.csr"
        csr.save(path)
        loaded = CSRGraph.load(path)
        assert effective_backend(loaded) == "csr"
        assert as_csr(loaded) is loaded

    def test_unserialisable_labels_raise(self, tmp_path):
        graph = Graph.from_edges([((1, 2), (3, 4))])  # tuple labels
        with pytest.raises(GraphError, match="not an int or str"):
            save_snapshot(graph, tmp_path / "bad.csr")


# ----------------------------------------------------------------------
# Corruption safety
# ----------------------------------------------------------------------
def _patch_byte(path: Path, offset: int, value: bytes) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(value)


class TestCorruption:
    @pytest.fixture
    def snapshot_path(self, tmp_path) -> Path:
        path = tmp_path / "g.csr"
        save_snapshot(CSRGraph.from_graph(_weighted_graph()), path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot stat"):
            load_snapshot(tmp_path / "nope.csr")

    def test_truncated_header(self, snapshot_path):
        with open(snapshot_path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(GraphError) as excinfo:
            load_snapshot(snapshot_path)
        assert str(snapshot_path) in str(excinfo.value)
        assert "truncated" in str(excinfo.value)

    def test_truncated_arrays(self, snapshot_path):
        size = os.path.getsize(snapshot_path)
        with open(snapshot_path, "r+b") as handle:
            handle.truncate(size - 8)
        with pytest.raises(GraphError, match="header describes"):
            load_snapshot(snapshot_path)

    def test_trailing_garbage(self, snapshot_path):
        with open(snapshot_path, "ab") as handle:
            handle.write(b"\0" * 16)
        with pytest.raises(GraphError, match="header describes"):
            load_snapshot(snapshot_path)

    def test_bad_magic(self, snapshot_path):
        _patch_byte(snapshot_path, 0, b"NOTACSRF")
        with pytest.raises(GraphError, match="bad magic"):
            load_snapshot(snapshot_path)

    def test_foreign_endianness(self, snapshot_path):
        # A foreign-endianness writer would store the sentinel byte-swapped.
        swapped = struct.pack("=I", 0x01020304)[::-1]
        _patch_byte(snapshot_path, 8, swapped)
        with pytest.raises(GraphError, match="foreign byte order"):
            load_snapshot(snapshot_path)

    def test_stale_format_version(self, snapshot_path):
        _patch_byte(snapshot_path, 12, struct.pack("=I", store.FORMAT_VERSION + 1))
        with pytest.raises(GraphError) as excinfo:
            load_snapshot(snapshot_path)
        message = str(excinfo.value)
        assert "format version" in message and str(snapshot_path) in message

    def test_header_checksum(self, snapshot_path):
        # Flip a count byte: the header CRC must catch it.
        _patch_byte(snapshot_path, 24, b"\x09")
        with pytest.raises(GraphError, match="checksum mismatch"):
            load_snapshot(snapshot_path)

    def test_arrays_checksum_in_ram_load(self, snapshot_path):
        size = os.path.getsize(snapshot_path)
        _patch_byte(snapshot_path, size - 1, b"\xab")
        with pytest.raises(GraphError, match="arrays checksum mismatch"):
            load_snapshot(snapshot_path, mmap="off")

    @needs_numpy
    def test_arrays_checksum_mmap_verify(self, snapshot_path):
        size = os.path.getsize(snapshot_path)
        _patch_byte(snapshot_path, size - 1, b"\xab")
        # Default mapped load skips the array checksum (O(1) attach)...
        load_snapshot(snapshot_path, mmap="auto")
        # ...but verify=True checks it.
        with pytest.raises(GraphError, match="arrays checksum mismatch"):
            load_snapshot(snapshot_path, mmap="auto", verify=True)


# ----------------------------------------------------------------------
# Knob protocol
# ----------------------------------------------------------------------
class TestKnobs:
    def test_mmap_default(self, monkeypatch):
        monkeypatch.delenv(store.MMAP_ENV_VAR, raising=False)
        assert store.default_mmap() == "auto"
        assert store.resolve_mmap() == "auto"
        assert store.resolve_mmap("off") == "off"

    def test_mmap_env(self, monkeypatch):
        monkeypatch.setenv(store.MMAP_ENV_VAR, "off")
        assert store.resolve_mmap() == "off"
        assert store.effective_mmap() is False

    def test_mmap_env_invalid(self, monkeypatch):
        monkeypatch.setenv(store.MMAP_ENV_VAR, "sideways")
        with pytest.raises(ValueError, match="REPRO_MMAP"):
            store.resolve_mmap()

    def test_mmap_setter_overrides_env_and_mirrors(self, monkeypatch):
        monkeypatch.setenv(store.MMAP_ENV_VAR, "off")
        store.set_default_mmap("on")
        assert store.resolve_mmap() == "on"
        assert os.environ[store.MMAP_ENV_VAR] == "on"
        store.set_default_mmap(None)
        assert os.environ[store.MMAP_ENV_VAR] == "off"  # displaced value back
        assert store.resolve_mmap() == "off"

    def test_mmap_setter_invalid(self):
        with pytest.raises(ValueError, match="not a valid mmap mode"):
            store.set_default_mmap("sometimes")

    def test_snapshot_dir_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv(store.SNAPSHOT_DIR_ENV_VAR, raising=False)
        assert store.resolve_snapshot_dir() is None
        monkeypatch.setenv(store.SNAPSHOT_DIR_ENV_VAR, str(tmp_path / "env"))
        assert store.resolve_snapshot_dir() == tmp_path / "env"
        store.set_default_snapshot_dir(tmp_path / "setter")
        assert store.resolve_snapshot_dir() == tmp_path / "setter"
        assert os.environ[store.SNAPSHOT_DIR_ENV_VAR] == str(tmp_path / "setter")
        assert store.resolve_snapshot_dir(tmp_path / "arg") == tmp_path / "arg"
        store.set_default_snapshot_dir(None)
        assert store.resolve_snapshot_dir() == tmp_path / "env"

    def test_snapshot_dir_empty_setter_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            store.set_default_snapshot_dir("   ")

    def test_effective_mmap_tracks_numpy(self, monkeypatch):
        monkeypatch.delenv(store.MMAP_ENV_VAR, raising=False)
        assert store.effective_mmap() is HAS_NUMPY
        assert store.effective_mmap("off") is False
        monkeypatch.setattr(store, "HAS_NUMPY", False)
        assert store.effective_mmap("on") is False

    def test_experiment_config_fields(self, tmp_path):
        config = ExperimentConfig(snapshot_dir=str(tmp_path), mmap="auto")
        assert config.snapshot_dir == str(tmp_path)
        with pytest.raises(ValueError, match="mmap"):
            ExperimentConfig(mmap="sideways")
        with pytest.raises(ValueError, match="snapshot_dir"):
            ExperimentConfig(snapshot_dir="  ")

    def test_runner_applies_snapshot_config(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner

        config = ExperimentConfig(
            datasets=("karate",), scale=1.0, snapshot_dir=str(tmp_path), mmap="off"
        )
        runner = ExperimentRunner(config)
        try:
            runner.dataset("karate")
            assert store.resolve_snapshot_dir() == tmp_path
            assert store.resolve_mmap() == "off"
            assert (tmp_path / "datasets").is_dir()
        finally:
            store.set_default_snapshot_dir(None)
            store.set_default_mmap(None)

    def test_cli_flags(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["rank", "--snapshot-dir", str(tmp_path), "--mmap", "off"]
        )
        assert args.snapshot_dir == str(tmp_path)
        assert args.mmap == "off"


# ----------------------------------------------------------------------
# Reconstruction and digests
# ----------------------------------------------------------------------
class TestGraphFromSnapshot:
    def test_preserves_adjacency_order(self):
        graph = _ordered_graph()
        csr = CSRGraph.from_graph(graph)
        rebuilt = graph_from_snapshot(csr)
        assert list(rebuilt.nodes()) == list(graph.nodes())
        for node in graph.nodes():
            assert list(rebuilt.neighbors(node)) == list(graph.neighbors(node))
        assert _snapshot_bytes(CSRGraph.from_graph(rebuilt)) == _snapshot_bytes(csr)

    def test_weighted_reconstruction(self):
        graph = _weighted_graph()
        csr = CSRGraph.from_graph(graph)
        rebuilt = graph_from_snapshot(csr)
        again = CSRGraph.from_graph(rebuilt)
        assert _snapshot_bytes(again) == _snapshot_bytes(csr)
        assert again.weight_list() == csr.weight_list()

    def test_roundtrip_through_disk(self, tmp_path):
        graph = _ordered_graph()
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "g.csr"
        csr.save(path)
        rebuilt = graph_from_snapshot(CSRGraph.load(path))
        assert _snapshot_bytes(CSRGraph.from_graph(rebuilt)) == _snapshot_bytes(csr)

    def test_asymmetric_snapshot_rejected(self):
        csr = CSRGraph.from_graph(Graph.from_edges([(0, 1), (1, 2)]))
        # Break symmetry: claim node 0 has neighbour 2 instead of 1.
        indices = list(csr.indices)
        indices[0] = 2
        if HAS_NUMPY:
            import numpy as np

            bad = CSRGraph(np.asarray(csr.indptr), np.asarray(indices), csr.labels)
        else:
            bad = CSRGraph(csr.indptr, array("q", indices), csr.labels)
        with pytest.raises(GraphError, match="not symmetric"):
            graph_from_snapshot(bad)

    def test_dataset_scale_reconstruction(self):
        graph = load("flickr", scale=0.1, seed=3).graph
        csr = CSRGraph.from_graph(graph)
        rebuilt = graph_from_snapshot(csr)
        assert _snapshot_bytes(CSRGraph.from_graph(rebuilt)) == _snapshot_bytes(csr)


class TestContentDigest:
    def test_graph_and_snapshot_agree(self, tmp_path):
        graph = _ordered_graph()
        csr = CSRGraph.from_graph(graph)
        path = tmp_path / "g.csr"
        csr.save(path)
        digests = {
            content_digest(graph),
            content_digest(csr),
            content_digest(CSRGraph.load(path, mmap="auto")),
            content_digest(CSRGraph.load(path, mmap="off")),
        }
        assert len(digests) == 1

    def test_weighted_graph_and_snapshot_agree(self):
        graph = _weighted_graph()
        assert content_digest(graph) == content_digest(CSRGraph.from_graph(graph))

    def test_content_changes_digest(self):
        base = _ordered_graph()
        other = _ordered_graph()
        other.add_edge("a", "e")
        assert content_digest(base) != content_digest(other)
        weighted = Graph()
        weighted.add_edge("a", "b", weight=2.0)
        unweighted = Graph.from_edges([("a", "b")])
        assert content_digest(weighted) != content_digest(unweighted)

    def test_adjacency_order_matters(self):
        # Same edge set, different insertion order => different traversal
        # order => different digest (it addresses *bit-identical* truth).
        one = Graph.from_edges([(0, 1), (0, 2)])
        two = Graph.from_edges([(0, 2), (0, 1)])
        assert content_digest(one) != content_digest(two)


# ----------------------------------------------------------------------
# SnapshotStore
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_save_load_contains(self, tmp_path):
        snap = SnapshotStore(tmp_path / "store")
        graph = _ordered_graph()
        assert snap.load("k") is None
        assert not snap.contains("k")
        snap.save("k", graph)
        assert snap.contains("k")
        loaded = snap.load("k")
        assert _snapshot_bytes(loaded) == _snapshot_bytes(as_csr(graph))
        assert list(snap.keys()) == ["k"]

    def test_meta_sidecar(self, tmp_path):
        snap = SnapshotStore(tmp_path)
        assert snap.load_meta("k") is None
        snap.save_meta("k", {"description": "x", "n": 3})
        assert snap.load_meta("k") == {"description": "x", "n": 3}

    def test_key_sanitisation_is_collision_safe(self, tmp_path):
        snap = SnapshotStore(tmp_path)
        a, b = "k/1", "k:1"  # both sanitise to k_1 without the hash suffix
        assert snap.path_for(a) != snap.path_for(b)
        assert snap.path_for("plain@1.0#0").name == "plain@1.0#0.csr"


# ----------------------------------------------------------------------
# Registry memoisation
# ----------------------------------------------------------------------
class TestRegistryMemoisation:
    def test_store_roundtrip_is_bit_identical(self, tmp_path):
        fresh = load("flickr", scale=0.1, seed=3)
        first = load("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        hit = load("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        key = dataset_key("flickr", 0.1, 3)
        assert (tmp_path / "datasets" / f"{key}.csr").exists()
        for dataset in (first, hit):
            assert list(dataset.graph.nodes()) == list(fresh.graph.nodes())
            assert _snapshot_bytes(CSRGraph.from_graph(dataset.graph)) == (
                _snapshot_bytes(CSRGraph.from_graph(fresh.graph))
            )
            assert dataset.description == fresh.description
            assert dataset.paper_reference == fresh.paper_reference

    def test_coordinates_roundtrip(self, tmp_path):
        fresh = load("usa-road", scale=0.3, seed=1)
        load("usa-road", scale=0.3, seed=1, snapshot_dir=str(tmp_path))
        hit = load("usa-road", scale=0.3, seed=1, snapshot_dir=str(tmp_path))
        assert hit.coordinates == fresh.coordinates

    def test_store_hit_adopts_snapshot(self, tmp_path):
        load("karate", snapshot_dir=str(tmp_path))
        hit = load("karate", snapshot_dir=str(tmp_path))
        csr = as_csr(hit.graph)
        assert csr.source_path is not None
        if store.effective_mmap():  # mmap=off legs load into RAM instead
            import numpy as np

            assert isinstance(csr.indptr, np.memmap)

    def test_load_csr_store_hit(self, tmp_path):
        fresh = as_csr(load("karate").graph)
        csr = load_csr("karate", snapshot_dir=str(tmp_path))
        assert csr.source_path is not None
        assert _snapshot_bytes(csr) == _snapshot_bytes(fresh)
        again = load_csr("karate", snapshot_dir=str(tmp_path))
        assert _snapshot_bytes(again) == _snapshot_bytes(fresh)

    def test_load_csr_without_store(self):
        csr = load_csr("karate")
        assert _snapshot_bytes(csr) == _snapshot_bytes(as_csr(load("karate").graph))

    def test_corrupt_store_entry_is_rebuilt(self, tmp_path):
        load("karate", snapshot_dir=str(tmp_path))
        key = dataset_key("karate", 1.0, 0)
        path = tmp_path / "datasets" / f"{key}.csr"
        with open(path, "r+b") as handle:
            handle.truncate(40)
        hit = load("karate", snapshot_dir=str(tmp_path))
        assert hit.graph.number_of_nodes() == 34
        # The corrupt file was overwritten with a good snapshot.
        reloaded = load_snapshot(path, verify=True)
        assert reloaded.n == 34

    def test_knob_driven_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store.SNAPSHOT_DIR_ENV_VAR, str(tmp_path))
        load("karate")
        assert (tmp_path / "datasets").is_dir()

    def test_mutating_a_store_hit_patches_copy_on_write(self, tmp_path):
        load("karate", snapshot_dir=str(tmp_path))
        hit = load("karate", snapshot_dir=str(tmp_path))
        adopted = as_csr(hit.graph)
        before = _snapshot_bytes(adopted)
        hit.graph.add_edge(0, 9) if 9 not in set(hit.graph.neighbors(0)) else None
        patched = as_csr(hit.graph)
        assert patched is not adopted
        assert patched.source_path is None  # fresh in-RAM arrays
        assert _snapshot_bytes(adopted) == before  # mapped file untouched
        assert _snapshot_bytes(patched) == _snapshot_bytes(
            CSRGraph.from_graph(hit.graph)
        )


# ----------------------------------------------------------------------
# Worker handoff
# ----------------------------------------------------------------------
class TestSnapshotFileHandoff:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        parallel.set_shared_memory_enabled(None)
        store.set_default_mmap(None)

    @needs_numpy
    def test_payload_ships_path_not_blocks(self, tmp_path):
        store.set_default_mmap("auto")  # pin: mmap=off legs export shm instead
        csr = load_csr("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        payload = parallel.shareable_graph(csr, backend="csr")
        assert isinstance(payload, parallel.SharedCSRPayload)
        blob = pickle.dumps(payload)
        assert len(blob) < 512  # path + header, not the arrays
        assert payload.block_names() == []  # nothing exported to /dev/shm
        fn, _args = payload._handle
        assert fn is parallel._attach_snapshot_file
        restored = pickle.loads(blob)
        assert _snapshot_bytes(restored) == _snapshot_bytes(csr)

    @needs_numpy
    def test_worker_attach_is_cached_per_file(self, tmp_path):
        csr = load_csr("karate", snapshot_dir=str(tmp_path))
        args = (csr.source_path, csr.n, len(csr.indices), False)
        first = parallel._attach_snapshot_file(*args)
        second = parallel._attach_snapshot_file(*args)
        assert first is second

    @needs_numpy
    def test_attach_header_mismatch_raises(self, tmp_path):
        csr = load_csr("karate", snapshot_dir=str(tmp_path))
        with pytest.raises(GraphError, match="no longer matches"):
            parallel._attach_snapshot_file(
                csr.source_path, csr.n + 1, len(csr.indices), False
            )

    @needs_numpy
    def test_mmap_off_falls_back_to_shm_export(self, tmp_path):
        csr = load_csr("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        store.set_default_mmap("off")
        payload = parallel.shareable_graph(csr, backend="csr")
        try:
            pickle.dumps(payload)
            fn, _args = payload._handle
            assert fn is parallel._attach_shared_csr
            assert payload.block_names()  # blocks actually exported
        finally:
            payload.release()

    @needs_numpy
    def test_deleted_file_falls_back_to_shm_export(self, tmp_path):
        csr = load_csr("karate", snapshot_dir=str(tmp_path))
        os.unlink(csr.source_path)
        payload = parallel.shareable_graph(csr, backend="csr")
        try:
            pickle.dumps(payload)
            fn, _args = payload._handle
            assert fn is parallel._attach_shared_csr
        finally:
            payload.release()

    @needs_numpy
    def test_worker_equivalence_on_adopted_snapshot(self, tmp_path):
        baseline = betweenness_centrality(
            load("flickr", scale=0.1, seed=3).graph, normalized=True, workers=0
        )
        load("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        hit = load("flickr", scale=0.1, seed=3, snapshot_dir=str(tmp_path))
        serial = betweenness_centrality(hit.graph, normalized=True, workers=0)
        pooled = betweenness_centrality(hit.graph, normalized=True, workers=2)
        assert serial == pooled == baseline


# ----------------------------------------------------------------------
# Persistent ground truth
# ----------------------------------------------------------------------
class TestPersistentGroundTruth:
    def test_digest_tier_reuses_across_cache_instances(self, tmp_path):
        graph = load("karate").graph
        first = GroundTruthCache(digest_dir=tmp_path / "gt")
        truth = first.get("karate", graph)
        files = list((tmp_path / "gt").glob("bt_*_hop.json"))
        assert len(files) == 1
        # A different cache instance, different key, same content: digest hit.
        second = GroundTruthCache(digest_dir=tmp_path / "gt")
        reloaded = second.get("another-key", load("karate").graph)
        assert reloaded == truth

    def test_digest_tier_derives_from_snapshot_dir_knob(self, tmp_path):
        store.set_default_snapshot_dir(tmp_path)
        try:
            cache = GroundTruthCache()
            cache.get("karate", load("karate").graph)
            assert list((tmp_path / "ground_truth").glob("bt_*.json"))
        finally:
            store.set_default_snapshot_dir(None)

    def test_no_store_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv(store.SNAPSHOT_DIR_ENV_VAR, raising=False)
        cache = GroundTruthCache()
        cache.get("karate", load("karate").graph)
        assert not list(tmp_path.iterdir())

    def test_metric_routes_the_digest_file(self, tmp_path):
        from repro.graphs.sssp import set_default_weighted

        graph = load("ba-weighted", scale=0.2, seed=5).graph
        cache = GroundTruthCache(digest_dir=tmp_path)
        weighted_truth = cache.get("w", graph)
        assert list(tmp_path.glob("bt_*_weighted.json"))
        set_default_weighted("off")
        try:
            hop_truth = GroundTruthCache(digest_dir=tmp_path).get("w", graph)
            assert list(tmp_path.glob("bt_*_hop.json"))
        finally:
            set_default_weighted(None)
        assert weighted_truth != hop_truth

    def test_restart_equivalence_across_process_boundary(self, tmp_path):
        """Exact Brandes survives a real process restart, bit for bit."""
        graph = load("karate").graph
        parent = GroundTruthCache(digest_dir=tmp_path).get("karate", graph)
        child_script = (
            "import json, sys\n"
            "from repro.datasets import GroundTruthCache, load\n"
            "import repro.datasets.ground_truth as gt\n"
            "def boom(graph, *, workers=None):\n"
            "    raise AssertionError('recomputed instead of disk hit')\n"
            "gt.exact_betweenness = boom\n"
            "cache = GroundTruthCache(digest_dir=sys.argv[1])\n"
            "values = cache.get('karate', load('karate').graph)\n"
            "print(json.dumps({repr(k): repr(v) for k, v in values.items()}))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", child_script, str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        child = json.loads(result.stdout)
        assert child == {repr(k): repr(v) for k, v in parent.items()}
