"""Tests for the per-hypothesis error-probability allocation (Eq. 13)."""

from __future__ import annotations

import pytest

from repro.stats.allocation import allocate_error_probabilities, solve_delta_for_epsilon
from repro.stats.bernstein import empirical_bernstein_bound


class TestSolveDelta:
    def test_solution_achieves_target(self):
        target = 0.05
        variance = 0.04
        num_samples = 5000
        delta0 = solve_delta_for_epsilon(target, num_samples, variance)
        achieved = empirical_bernstein_bound(num_samples, delta0, variance)
        assert achieved <= target * 1.01

    def test_larger_variance_needs_larger_delta(self):
        small = solve_delta_for_epsilon(0.05, 5000, 0.001)
        large = solve_delta_for_epsilon(0.05, 5000, 0.2)
        assert large >= small

    def test_impossible_target_returns_half(self):
        # Tiny sample budget with huge variance: even delta=0.5 cannot reach
        # the target, so the solver gives up at 0.5.
        assert solve_delta_for_epsilon(0.0001, 10, 0.25) == 0.5

    def test_few_samples_returns_half(self):
        assert solve_delta_for_epsilon(0.1, 1, 0.1) == 0.5

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            solve_delta_for_epsilon(0.0, 100, 0.1)


class TestAllocation:
    def test_budget_constraint(self):
        variances = [0.01, 0.1, 0.25, 0.0]
        delta = 0.05
        rounds = 4
        allocations = allocate_error_probabilities(
            variances, target_epsilon=0.05, delta=delta, num_rounds=rounds,
            max_samples=10_000,
        )
        assert len(allocations) == len(variances)
        assert sum(2 * value for value in allocations) == pytest.approx(
            delta / rounds, rel=1e-6
        )

    def test_high_variance_gets_larger_share(self):
        allocations = allocate_error_probabilities(
            [0.001, 0.25], target_epsilon=0.05, delta=0.05, num_rounds=3,
            max_samples=50_000,
        )
        assert allocations[1] >= allocations[0]

    def test_all_positive(self):
        allocations = allocate_error_probabilities(
            [0.0, 0.0, 0.0], target_epsilon=0.1, delta=0.1, num_rounds=1,
            max_samples=1000,
        )
        assert all(value > 0 for value in allocations)

    def test_empty_input(self):
        assert allocate_error_probabilities(
            [], target_epsilon=0.1, delta=0.1, num_rounds=1, max_samples=100
        ) == []

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            allocate_error_probabilities(
                [0.1], target_epsilon=0.1, delta=0.1, num_rounds=0, max_samples=100
            )

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            allocate_error_probabilities(
                [0.1], target_epsilon=0.1, delta=0.0, num_rounds=1, max_samples=100
            )
