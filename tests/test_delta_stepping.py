"""Unit tests for the delta-stepping kernel and its knobs (PR 6).

The bit-identity of delta-stepping against Dijkstra/dict is asserted at
scale in ``test_backend_equivalence.py``; this module covers the knob
machinery (``sssp_kernel``, ``compiled``), the bucket-width auto-tuning,
the pure-Python degradation, and the small helpers the kernel builds on.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import compiled as compiled_module
from repro.graphs import csr as csr_module
from repro.graphs import delta_stepping as delta_module
from repro.graphs import sssp
from repro.graphs.generators import (
    barabasi_albert_graph,
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture()
def clean_kernel_env(monkeypatch):
    monkeypatch.delenv(sssp.SSSP_KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(compiled_module.COMPILED_ENV_VAR, raising=False)


class TestSSSPKernelKnob:
    def test_resolution_order(self, monkeypatch, clean_kernel_env):
        assert sssp.resolve_sssp_kernel() == "auto"
        monkeypatch.setenv(sssp.SSSP_KERNEL_ENV_VAR, "dijkstra")
        assert sssp.resolve_sssp_kernel() == "dijkstra"
        assert sssp.resolve_sssp_kernel("delta") == "delta"
        sssp.set_default_sssp_kernel("delta")
        try:
            assert sssp.resolve_sssp_kernel() == "delta"
            # The override mirrors into the environment for spawn workers.
            assert sssp._env_sssp_kernel() == "delta"
        finally:
            sssp.set_default_sssp_kernel(None)
        assert sssp.resolve_sssp_kernel() == "dijkstra"  # displaced env restored

    def test_invalid_values_rejected(self, monkeypatch, clean_kernel_env):
        with pytest.raises(ValueError, match="sssp_kernel"):
            sssp.resolve_sssp_kernel("bfs")
        with pytest.raises(ValueError, match="sssp_kernel"):
            sssp.set_default_sssp_kernel("bellman-ford")
        monkeypatch.setenv(sssp.SSSP_KERNEL_ENV_VAR, "quantum")
        with pytest.raises(ValueError, match=sssp.SSSP_KERNEL_ENV_VAR):
            sssp.resolve_sssp_kernel()

    def test_auto_routes_batched_to_delta(self, clean_kernel_env):
        if csr_module.HAS_NUMPY:
            assert sssp.effective_sssp_kernel(batched=True) == "delta"
        else:
            assert sssp.effective_sssp_kernel(batched=True) == "dijkstra"
        # Single-source calls (thin frontiers) stay on the heap kernel.
        assert sssp.effective_sssp_kernel(batched=False) == "dijkstra"
        # Forced choices ignore the batched hint.
        assert sssp.effective_sssp_kernel("delta", batched=False) == "delta"
        assert sssp.effective_sssp_kernel("dijkstra", batched=True) == "dijkstra"

    def test_auto_without_numpy_stays_dijkstra(self, monkeypatch, clean_kernel_env):
        monkeypatch.setattr(csr_module, "HAS_NUMPY", False)
        assert sssp.effective_sssp_kernel(batched=True) == "dijkstra"

    def test_multi_source_sweep_rejects_bad_kernel(self):
        graph = weighted_barabasi_albert_graph(30, 2, seed=0)
        snapshot = csr_module.as_csr(graph)
        with pytest.raises(ValueError, match="sssp_kernel"):
            csr_module.multi_source_sweep(
                snapshot, [0, 1], weighted=True, sssp_kernel="dial"
            )

    def test_config_field_validation(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.smoke()
        assert config.sssp_kernel is None and config.compiled is None
        ExperimentConfig(sssp_kernel="delta", compiled="off")  # valid
        with pytest.raises(ValueError, match="sssp_kernel"):
            ExperimentConfig(sssp_kernel="fast")
        with pytest.raises(ValueError, match="compiled"):
            ExperimentConfig(compiled="maybe")

    def test_cli_flags_accepted(self, clean_kernel_env):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["rank", "--sssp-kernel", "delta", "--compiled", "off"]
        )
        assert args.sssp_kernel == "delta"
        assert args.compiled == "off"


class TestCompiledKnob:
    def test_resolution_order(self, monkeypatch, clean_kernel_env):
        assert compiled_module.resolve_compiled() == "auto"
        monkeypatch.setenv(compiled_module.COMPILED_ENV_VAR, "off")
        assert compiled_module.resolve_compiled() == "off"
        assert compiled_module.resolve_compiled("on") == "on"
        compiled_module.set_default_compiled("off")
        try:
            assert compiled_module.resolve_compiled() == "off"
            assert compiled_module._env_compiled() == "off"
        finally:
            compiled_module.set_default_compiled(None)

    def test_invalid_values_rejected(self, monkeypatch, clean_kernel_env):
        with pytest.raises(ValueError, match="compiled"):
            compiled_module.resolve_compiled("jit")
        monkeypatch.setenv(compiled_module.COMPILED_ENV_VAR, "always")
        with pytest.raises(ValueError, match=compiled_module.COMPILED_ENV_VAR):
            compiled_module.resolve_compiled()

    def test_off_disables_tier(self, clean_kernel_env):
        assert compiled_module.compiled_enabled("off") is False
        assert compiled_module.get_kernel("relax_edges", "off") is None

    def test_on_without_numba_raises(self, monkeypatch, clean_kernel_env):
        monkeypatch.setattr(compiled_module, "HAS_NUMBA", False)
        with pytest.raises(ValueError, match="numba"):
            compiled_module.compiled_enabled("on")
        # "auto" degrades gracefully instead of raising.
        assert compiled_module.compiled_enabled("auto") is False
        assert compiled_module.get_kernel("relax_edges", "auto") is None

    def test_unknown_kernel_name_raises(self, clean_kernel_env):
        with pytest.raises(ValueError, match="unknown compiled kernel"):
            compiled_module.get_kernel("warp_speed")

    def test_tier_never_changes_results(self, clean_kernel_env):
        # With numba absent this exercises the graceful-degradation path;
        # with numba present it compares jitted vs pure-Python loops.
        graph = weighted_barabasi_albert_graph(60, 3, seed=1)
        snapshot = csr_module.as_csr(graph)
        compiled_module.set_default_compiled("off")
        try:
            off = delta_module.csr_delta_dag(snapshot, 0)
        finally:
            compiled_module.set_default_compiled(None)
        auto = delta_module.csr_delta_dag(snapshot, 0)
        assert list(off.dist) == list(auto.dist)
        assert list(off.sigma) == list(auto.sigma)
        assert list(off.order) == list(auto.order)


class TestAutoDelta:
    def test_unit_weight_snapshot_gets_unit_delta(self):
        graph = barabasi_albert_graph(40, 2, seed=0)
        snapshot = csr_module.as_csr(graph)
        assert delta_module.auto_delta(snapshot) == 1.0

    def test_weighted_delta_at_least_mean(self):
        graph = weighted_barabasi_albert_graph(80, 3, seed=2)
        snapshot = csr_module.as_csr(graph)
        weights = snapshot.weights
        mean = float(sum(weights)) / len(weights)
        value = delta_module.auto_delta(snapshot)
        assert value >= mean * (1 - 1e-12)

    def test_high_diameter_graph_gets_fat_buckets(self):
        # A 40x3 grid has hop eccentricity ~ 41 from the corner probe, far
        # above _TARGET_BUCKETS, so the range-based regime must kick in.
        graph = weighted_grid_road_graph(40, 3, seed=3)[0]
        snapshot = csr_module.as_csr(graph)
        weights = snapshot.weights
        mean = float(sum(weights)) / len(weights)
        assert delta_module.auto_delta(snapshot) > 1.5 * mean

    def test_cached_per_snapshot(self):
        graph = weighted_barabasi_albert_graph(40, 2, seed=4)
        snapshot = csr_module.as_csr(graph)
        assert delta_module.auto_delta(snapshot) == delta_module.auto_delta(snapshot)
        assert snapshot in delta_module._auto_delta_cache

    @pytest.mark.parametrize("bad", (0.0, -1.5, float("inf"), float("nan")))
    def test_explicit_delta_validated(self, bad):
        graph = weighted_barabasi_albert_graph(20, 2, seed=5)
        snapshot = csr_module.as_csr(graph)
        with pytest.raises(ValueError, match="delta"):
            delta_module.csr_delta_dag(snapshot, 0, delta=bad)

    def test_any_valid_delta_same_results(self):
        graph = weighted_barabasi_albert_graph(60, 3, seed=6)
        snapshot = csr_module.as_csr(graph)
        reference = csr_module.csr_dijkstra_dag(snapshot, 0)
        for delta in (0.25, 1.0, 7.0, 1e6):
            dag = delta_module.csr_delta_dag(snapshot, 0, delta=delta)
            assert list(dag.dist) == list(reference.dist)
            assert dag.sigma == reference.sigma
            assert list(dag.order) == list(reference.order)


@pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="compares against numpy build")
class TestPurePythonFallback:
    def test_no_numpy_delta_matches_dijkstra(self, monkeypatch):
        graph = weighted_barabasi_albert_graph(70, 3, seed=7)
        reference_snapshot = csr_module.as_csr(graph)
        reference = csr_module.csr_dijkstra_dag(reference_snapshot, 0)
        monkeypatch.setattr(csr_module, "HAS_NUMPY", False)
        snapshot = csr_module.CSRGraph.from_graph(graph)
        dag = delta_module.csr_delta_dag(snapshot, 0)
        assert list(dag.dist) == list(reference.dist)
        assert list(dag.sigma) == list(reference.sigma)
        assert list(dag.order) == list(reference.order)
        assert list(dag.pred_indptr) == list(reference.pred_indptr)
        assert list(dag.pred_indices) == list(reference.pred_indices)

    def test_no_numpy_sweep_matches(self, monkeypatch):
        graph = weighted_barabasi_albert_graph(50, 2, seed=8)
        reference_snapshot = csr_module.as_csr(graph)
        expected = csr_module.multi_source_sweep(
            reference_snapshot, [0, 1, 2], kind="distance", weighted=True,
            sssp_kernel="dijkstra",
        )
        monkeypatch.setattr(csr_module, "HAS_NUMPY", False)
        snapshot = csr_module.CSRGraph.from_graph(graph)
        rows = delta_module.delta_sweep(snapshot, [0, 1, 2], kind="distance")
        for a, b in zip(expected, rows):
            assert list(a) == list(b)


@pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="numpy-only helpers")
class TestKernelInternals:
    def test_dedup(self):
        import numpy as np

        assert delta_module._dedup(np.array([], dtype=np.int64)).size == 0
        out = delta_module._dedup(np.array([5, 3, 5, 3, 9], dtype=np.int64))
        assert out.tolist() == [3, 5, 9]
        out = delta_module._dedup(np.array([2, 1], dtype=np.int64))
        assert out.tolist() == [1, 2]

    def test_edge_split_partitions_all_edges(self):
        graph = weighted_barabasi_albert_graph(60, 3, seed=9)
        snapshot = csr_module.as_csr(graph)
        delta = delta_module.auto_delta(snapshot)
        split = delta_module._edge_split(snapshot, delta)
        light_indptr, light_indices, light_weights = split.light
        heavy_indptr, heavy_indices, heavy_weights = split.heavy
        assert light_indices.size + heavy_indices.size == snapshot.indices.size
        assert (light_weights < delta).all()
        if heavy_weights.size:
            assert (heavy_weights >= delta).all()
        # Per-node degree conservation.
        import numpy as np

        total = np.diff(light_indptr) + np.diff(heavy_indptr)
        assert (total == np.diff(snapshot.indptr)).all()

    def test_unique_path_sigma_fast_path(self):
        # Distinct powers of two make every shortest path unique, so the
        # all-ones fast path must agree with the accumulation loop.
        graph = Graph()
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (0, 4, 8.0), (4, 5, 16.0)]
        for u, v, w in edges:
            graph.add_edge(u, v, weight=w)
        snapshot = csr_module.as_csr(graph)
        dag = delta_module.csr_delta_dag(snapshot, 0)
        reference = csr_module.csr_dijkstra_dag(snapshot, 0)
        assert dag.sigma == reference.sigma == [1, 1, 1, 1, 1, 1]

    def test_tie_heavy_sigma_loop_path(self):
        # A 2x2 grid of unit weights: 2 shortest paths to the far corner.
        graph = Graph.from_edges(
            [(0, 1, 2.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 2.0)]
        )
        snapshot = csr_module.as_csr(graph)
        dag = delta_module.csr_delta_dag(snapshot, 0)
        reference = csr_module.csr_dijkstra_dag(snapshot, 0)
        assert dag.sigma == reference.sigma
        assert dag.sigma[3] == 2


class TestRandomisedBitIdentity:
    """Randomised cross-check on small graphs, both weight regimes."""

    @pytest.mark.parametrize("trial", range(6))
    def test_random_graphs(self, trial):
        rng = random.Random(trial)
        n = rng.randint(5, 30)
        graph = Graph()
        for node in range(n):
            graph.add_node(node)
        for _ in range(rng.randint(n, 3 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            weight = (
                float(rng.randint(1, 4)) if trial % 2 else rng.uniform(0.1, 2.5)
            )
            graph.add_edge(u, v, weight=weight)
        snapshot = csr_module.as_csr(graph)
        for source in range(min(n, 4)):
            reference = csr_module.csr_dijkstra_dag(snapshot, source)
            dag = delta_module.csr_delta_dag(snapshot, source)
            assert list(dag.dist) == list(reference.dist)
            assert dag.sigma == reference.sigma
            assert list(dag.order) == list(reference.order)
            assert list(dag.pred_indptr) == list(reference.pred_indptr)
            assert list(dag.pred_indices) == list(reference.pred_indices)
            brandes_ref = csr_module.csr_dijkstra_brandes(snapshot, source)
            brandes_delta = delta_module.csr_delta_brandes(snapshot, source)
            for a, b in zip(brandes_ref, brandes_delta):
                assert list(a) == list(b)
