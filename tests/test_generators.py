"""Tests for the random-graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.components import is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_road_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestDeterministicGenerators:
    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_cycle_graph(self):
        graph = cycle_graph(6)
        assert graph.number_of_edges() == 6
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.number_of_edges() == 10

    def test_star_graph(self):
        graph = star_graph(7)
        assert graph.degree(0) == 7
        assert graph.number_of_edges() == 7

    def test_barbell_graph(self):
        graph = barbell_graph(4, 2)
        assert graph.number_of_nodes() == 4 + 2 + 4
        assert is_connected(graph)

    def test_barbell_requires_clique(self):
        with pytest.raises(GraphError):
            barbell_graph(2, 1)


class TestErdosRenyi:
    def test_zero_probability(self):
        graph = erdos_renyi_graph(20, 0.0, seed=1)
        assert graph.number_of_edges() == 0
        assert graph.number_of_nodes() == 20

    def test_probability_one_is_complete(self):
        graph = erdos_renyi_graph(6, 1.0, seed=1)
        assert graph.number_of_edges() == 15

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(30, 0.2, seed=5)
        b = erdos_renyi_graph(30, 0.2, seed=5)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_expected_density_roughly_matches(self):
        graph = erdos_renyi_graph(200, 0.05, seed=3)
        expected = 0.05 * 200 * 199 / 2
        assert 0.5 * expected < graph.number_of_edges() < 1.5 * expected

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_negative_nodes(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(-1, 0.5)


class TestBarabasiAlbert:
    def test_sizes(self):
        graph = barabasi_albert_graph(100, 3, seed=2)
        assert graph.number_of_nodes() == 100
        # m edges per new node after the initial star of m+1 nodes.
        assert graph.number_of_edges() == 3 + (100 - 4) * 3

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(80, 2, seed=4))

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(300, 2, seed=1)
        max_degree = max(graph.degree(node) for node in graph.nodes())
        assert max_degree > 10  # hubs emerge

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)


class TestPowerlawCluster:
    def test_connected_and_sized(self):
        graph = powerlaw_cluster_graph(120, 3, 0.4, seed=6)
        assert graph.number_of_nodes() == 120
        assert is_connected(graph)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(60, 2, 0.5, seed=9)
        b = powerlaw_cluster_graph(60, 2, 0.5, seed=9)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_invalid_triangle_probability(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(30, 2, 1.5)


class TestWattsStrogatz:
    def test_degree_preserved_without_rewiring(self):
        graph = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_edge_count_stable_under_rewiring(self):
        graph = watts_strogatz_graph(30, 4, 0.3, seed=2)
        assert graph.number_of_edges() == 30 * 2

    def test_odd_neighbors_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(4, 4, 0.1)


class TestGridRoad:
    def test_returns_graph_and_coordinates(self):
        graph, coords = grid_road_graph(8, 10, seed=3)
        assert graph.number_of_nodes() == len(coords)
        assert is_connected(graph)

    def test_low_average_degree(self):
        graph, _ = grid_road_graph(15, 15, seed=3)
        avg = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert avg < 4.5

    def test_deterministic(self):
        a, _ = grid_road_graph(6, 6, seed=11)
        b, _ = grid_road_graph(6, 6, seed=11)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            grid_road_graph(1, 5)
        with pytest.raises(GraphError):
            grid_road_graph(5, 5, removal_probability=1.0)
