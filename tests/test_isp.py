"""Tests for the (personalized) ISP sample space.

The central correctness check is the identity of Lemma 13 / Lemma 15:

    bc(v) = gamma * eta * E_{p ~ D_c^(A)}[g(v, p)] + bc_a(v)   for v in A,

verified by exhaustively enumerating the PISP space on small graphs and
comparing against exact Brandes betweenness.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.brandes import betweenness_centrality
from repro.errors import GraphError
from repro.graphs.components import largest_connected_component
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph
from repro.saphyra_bc.isp import PersonalizedISP


def isp_expected_risks(space: PersonalizedISP) -> dict:
    """E_{p ~ D_c^(A)}[g(v, p)] for every node, by exhaustive enumeration."""
    risks = {node: 0.0 for node in space.graph.nodes()}
    for path, probability in space.enumerate_paths():
        for inner in path[1:-1]:
            risks[inner] += probability
    return risks


class TestScalars:
    def test_full_personalization_eta_is_one(self, karate):
        space = PersonalizedISP(karate)
        assert space.eta == pytest.approx(1.0)
        assert space.gamma_eta == pytest.approx(space.gamma)

    def test_subset_eta_at_most_one(self, karate):
        space = PersonalizedISP(karate, targets=[0, 1, 2])
        assert 0 < space.eta <= 1.0

    def test_single_block_gamma_one(self, cycle6):
        space = PersonalizedISP(cycle6)
        assert space.gamma == pytest.approx(1.0)
        assert space.included_blocks == [0]

    def test_included_blocks_only_those_with_targets(self, two_triangles_shared_node):
        # Targets only in the first triangle {0,1,2}.
        space = PersonalizedISP(two_triangles_shared_node, targets=[1, 2])
        assert len(space.included_blocks) == 1

    def test_missing_target_rejected(self, karate):
        with pytest.raises(GraphError):
            PersonalizedISP(karate, targets=[0, 999])

    def test_duplicate_targets_rejected(self, karate):
        with pytest.raises(ValueError):
            PersonalizedISP(karate, targets=[0, 0])

    def test_tiny_graph_rejected(self):
        graph = Graph()
        graph.add_node(0)
        with pytest.raises(GraphError):
            PersonalizedISP(graph)


class TestEnumerationProbabilities:
    def test_probabilities_sum_to_one(self, karate):
        space = PersonalizedISP(karate)
        total = sum(probability for _, probability in space.enumerate_paths())
        assert total == pytest.approx(1.0)

    def test_personalized_probabilities_sum_to_one(self, karate):
        space = PersonalizedISP(karate, targets=[1, 2, 3, 7])
        total = sum(probability for _, probability in space.enumerate_paths())
        assert total == pytest.approx(1.0)

    def test_paths_stay_within_one_block(self, barbell):
        space = PersonalizedISP(barbell)
        for path, _ in space.enumerate_paths():
            assert space.common_block(path[0], path[-1]) is not None


class TestCentralityIdentity:
    def check_identity(self, graph, targets=None):
        bc = betweenness_centrality(graph)
        space = PersonalizedISP(graph, targets=targets)
        risks = isp_expected_risks(space)
        nodes = targets if targets is not None else list(graph.nodes())
        for node in nodes:
            reconstructed = space.gamma_eta * risks[node] + space.bc_a(node)
            assert reconstructed == pytest.approx(bc[node], abs=1e-9), node

    def test_karate_full(self, karate):
        self.check_identity(karate)

    def test_karate_subset(self, karate):
        self.check_identity(karate, targets=[0, 4, 8, 16, 32])

    def test_path_graph(self):
        self.check_identity(path_graph(6))

    def test_barbell(self, barbell):
        self.check_identity(barbell)

    def test_two_triangles(self, two_triangles_shared_node):
        self.check_identity(two_triangles_shared_node)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 12), 0.35, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 3:
            return
        graph = graph.subgraph(component)
        self.check_identity(graph)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_with_subsets(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(5, 12), 0.3, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 4:
            return
        graph = graph.subgraph(component)
        targets = rng.sample(list(graph.nodes()), 3)
        self.check_identity(graph, targets=targets)


class TestPairSampling:
    def test_pair_distribution_matches_weights(self, two_triangles_shared_node):
        """Sampled (s, t) pairs should follow q_st restricted to I(A)."""
        space = PersonalizedISP(two_triangles_shared_node)
        rng = random.Random(17)
        counts = Counter()
        draws = 6000
        for _ in range(draws):
            block, source, target = space.sample_pair(rng)
            counts[(block, source, target)] += 1
        n = space.n
        for (block, source, target), count in counts.items():
            reach = space.bct.out_reach[block]
            expected = reach[source] * reach[target] / space.personalized_pair_weight
            assert count / draws == pytest.approx(expected, abs=0.03)

    def test_sampled_pairs_in_included_blocks(self, karate):
        space = PersonalizedISP(karate, targets=[1, 2, 3])
        rng = random.Random(5)
        for _ in range(200):
            block, source, target = space.sample_pair(rng)
            assert block in space.included_blocks
            assert source != target
            block_nodes = set(space.bct.block_nodes(block))
            assert source in block_nodes and target in block_nodes

    def test_pair_weight_helper(self, karate):
        space = PersonalizedISP(karate)
        block = space.included_blocks[0]
        nodes = space.bct.block_nodes(block)
        weight = space.pair_weight(block, nodes[0], nodes[1])
        assert weight >= 1
