"""Tests for SaPHyRa_cc (closeness-centrality ranking, the framework extension)."""

from __future__ import annotations

import pytest

from repro.centrality.closeness import closeness_centrality
from repro.errors import GraphError, SamplingError
from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.metrics.rank_correlation import spearman_rank_correlation
from repro.saphyra_cc import ClosenessProblem, SaPHyRaCC


class TestClosenessProblem:
    def test_validation(self, karate):
        with pytest.raises(GraphError):
            ClosenessProblem(Graph.from_edges([(0, 1), (2, 3)]), [0])
        with pytest.raises(ValueError):
            ClosenessProblem(karate, [])
        with pytest.raises(ValueError):
            ClosenessProblem(karate, [0, 0])
        with pytest.raises(GraphError):
            ClosenessProblem(karate, [999])
        with pytest.raises(ValueError):
            ClosenessProblem(karate, [0], distance_bound=0)

    def test_exact_evaluation(self, karate):
        targets = [0, 5, 33]
        problem = ClosenessProblem(karate, targets, distance_bound=5)
        evaluation = problem.exact_evaluation()
        assert evaluation.lambda_exact == pytest.approx(3 / 34)
        # Exact risk of node 0: distances to the other targets / (n * D).
        distances = bfs_distances(karate, 0)
        expected = (distances[5] + distances[33]) / (34 * 5)
        assert evaluation.risks[0] == pytest.approx(expected)

    def test_sample_losses_dense_and_bounded(self, karate):
        problem = ClosenessProblem(karate, [0, 1, 2], distance_bound=5)
        losses = problem.sample_losses(rng=3)
        assert set(losses) == {0, 1, 2}
        assert all(0.0 <= value <= 1.0 for value in losses.values())

    def test_sample_losses_rejects_mutated_graph(self, karate):
        # Target indices/distances and the distance bound are frozen at
        # construction; sampling after a mutation would silently mix them
        # with fresh traversals of the new graph, so it must fail loudly.
        problem = ClosenessProblem(karate, [0, 1, 2], distance_bound=5)
        karate.add_edge(0, 999)
        with pytest.raises(GraphError, match="mutated"):
            problem.sample_losses(rng=3)

    def test_sample_losses_all_targets_raises(self):
        graph = complete_graph(4)
        problem = ClosenessProblem(graph, list(graph.nodes()), distance_bound=1)
        with pytest.raises(SamplingError):
            problem.sample_losses(rng=1)

    def test_vc_dimension_small(self, karate):
        problem = ClosenessProblem(karate, [0, 1, 2, 3], distance_bound=5)
        assert 0 <= problem.vc_dimension() <= 3

    def test_risk_round_trip(self, karate):
        problem = ClosenessProblem(karate, [0], distance_bound=5)
        # A node at average distance 2 has closeness 0.5.
        risk = 2.0 * (34 - 1) / (34 * 5)
        assert problem.risk_to_average_distance(risk) == pytest.approx(2.0)
        assert problem.risk_to_closeness(risk) == pytest.approx(0.5)


class TestSaPHyRaCC:
    def test_matches_exact_closeness_on_karate(self, karate):
        targets = sorted(karate.nodes())[:12]
        result = SaPHyRaCC(epsilon=0.03, delta=0.05, seed=7).rank(karate, targets)
        exact = closeness_centrality(karate, nodes=targets)
        correlation = spearman_rank_correlation(exact, result.closeness)
        assert correlation > 0.85
        # Average distances are within a loose absolute tolerance (epsilon is
        # expressed on the normalised distance, diameter bound <= 10).
        for node in targets:
            exact_average = 1.0 / exact[node]
            assert abs(result.average_distance[node] - exact_average) < 0.6

    def test_all_targets_short_circuits_to_exact(self):
        graph = path_graph(6)
        result = SaPHyRaCC(epsilon=0.05, delta=0.05, seed=1).rank(
            graph, list(graph.nodes())
        )
        assert result.num_samples == 0
        exact = closeness_centrality(graph)
        for node in graph.nodes():
            assert result.closeness[node] == pytest.approx(exact[node], rel=1e-6)

    def test_result_structure(self, karate):
        result = SaPHyRaCC(epsilon=0.1, delta=0.1, seed=2).rank(karate, [0, 1, 2])
        assert len(result) == 3
        assert set(result.ranking) == {0, 1, 2}
        assert result.lambda_exact == pytest.approx(3 / 34)
        assert result.distance_bound >= 5
        assert result.framework is not None

    def test_deterministic(self, karate):
        first = SaPHyRaCC(epsilon=0.1, delta=0.1, seed=5).rank(karate, [0, 3, 9])
        second = SaPHyRaCC(epsilon=0.1, delta=0.1, seed=5).rank(karate, [0, 3, 9])
        assert first.closeness == second.closeness

    def test_ranking_descending_closeness(self, karate):
        result = SaPHyRaCC(epsilon=0.1, delta=0.1, seed=3).rank(karate, [0, 9, 16])
        values = [result.closeness[node] for node in result.ranking]
        assert values == sorted(values, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SaPHyRaCC(epsilon=0.0, delta=0.1)
