"""Tests for exact betweenness centrality (Brandes)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.brandes import (
    betweenness_centrality,
    betweenness_from_pivots,
    betweenness_subset,
    single_source_dependencies,
)
from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import shortest_path_dag


def brute_force_betweenness(graph: Graph) -> dict:
    """O(n^3)-ish reference: enumerate all ordered pairs and their DAGs."""
    n = graph.number_of_nodes()
    result = {node: 0.0 for node in graph.nodes()}
    for source in graph.nodes():
        dag = shortest_path_dag(graph, source)
        for target in graph.nodes():
            if target == source or target not in dag.distances:
                continue
            # Count sigma_st(v) by dynamic programming over the DAG.
            paths_through = _count_paths_through(dag, target)
            for node, count in paths_through.items():
                if node in (source, target):
                    continue
                result[node] += count / dag.sigma[target]
    if n > 1:
        for node in result:
            result[node] /= n * (n - 1)
    return result


def _count_paths_through(dag, target):
    """sigma_st(v) for all v, for the fixed source of the DAG."""
    beta = {target: 1.0}
    frontier = [target]
    # repro-lint: disable=kernel-ownership — audited: independent oracle walking a DAG backwards to cross-check the kernel; must not share its code
    while frontier:
        next_frontier = []
        for node in frontier:
            for predecessor in dag.predecessors[node]:
                if predecessor not in beta:
                    beta[predecessor] = 0.0
                    next_frontier.append(predecessor)
                beta[predecessor] += beta[node]
        frontier = next_frontier
    return {node: dag.sigma[node] * value for node, value in beta.items()}


class TestKnownValues:
    def test_path_graph(self):
        # Path 0-1-2-3-4 with ordered-pair normalisation 1/(n(n-1)).
        bc = betweenness_centrality(path_graph(5))
        assert bc[0] == pytest.approx(0.0)
        assert bc[1] == pytest.approx(2 * 3 / 20)
        assert bc[2] == pytest.approx(2 * 4 / 20)
        assert bc[4] == pytest.approx(0.0)

    def test_star_graph(self):
        bc = betweenness_centrality(star_graph(5))
        # Every pair of leaves goes through the centre: 5*4 ordered pairs / 30.
        assert bc[0] == pytest.approx(20 / 30)
        assert all(bc[leaf] == 0.0 for leaf in range(1, 6))

    def test_complete_graph_all_zero(self):
        bc = betweenness_centrality(complete_graph(6))
        assert all(value == pytest.approx(0.0) for value in bc.values())

    def test_cycle_graph_symmetry(self):
        bc = betweenness_centrality(cycle_graph(7))
        values = list(bc.values())
        assert max(values) == pytest.approx(min(values))

    def test_unnormalized(self):
        bc = betweenness_centrality(path_graph(3), normalized=False)
        assert bc[1] == pytest.approx(2.0)

    def test_karate_most_central_nodes(self, karate):
        bc = betweenness_centrality(karate)
        top = sorted(bc, key=bc.get, reverse=True)[:3]
        assert set(top) == {0, 33, 32}
        assert bc[0] == pytest.approx(0.4119, abs=5e-4)


class TestSingleSourceDependencies:
    def test_source_not_included(self, karate):
        dependencies = single_source_dependencies(karate, 0)
        assert 0 not in dependencies

    def test_sums_match_betweenness(self, karate):
        n = karate.number_of_nodes()
        total = {node: 0.0 for node in karate.nodes()}
        for source in karate.nodes():
            for node, value in single_source_dependencies(karate, source).items():
                total[node] += value
        bc = betweenness_centrality(karate)
        for node in karate.nodes():
            assert bc[node] == pytest.approx(total[node] / (n * (n - 1)))

    def test_missing_source(self, karate):
        with pytest.raises(GraphError):
            single_source_dependencies(karate, 999)


class TestSubsetAndPivots:
    def test_subset_matches_full(self, karate):
        full = betweenness_centrality(karate)
        subset = betweenness_subset(karate, [0, 5, 33])
        assert set(subset) == {0, 5, 33}
        for node, value in subset.items():
            assert value == pytest.approx(full[node])

    def test_subset_missing_node_raises(self, karate):
        with pytest.raises(GraphError):
            betweenness_subset(karate, [0, 999])

    def test_all_pivots_equals_exact(self, karate):
        estimated = betweenness_from_pivots(karate, list(karate.nodes()))
        exact = betweenness_centrality(karate)
        for node in karate.nodes():
            assert estimated[node] == pytest.approx(exact[node])

    def test_pivot_estimate_reasonable(self, karate):
        rng = random.Random(3)
        pivots = rng.sample(list(karate.nodes()), 17)
        estimated = betweenness_from_pivots(karate, pivots)
        exact = betweenness_centrality(karate)
        for node in karate.nodes():
            assert abs(estimated[node] - exact[node]) < 0.2

    def test_empty_pivots_rejected(self, karate):
        with pytest.raises(ValueError):
            betweenness_from_pivots(karate, [])


class TestAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 14), 0.3, seed=rng.randint(0, 999))
        fast = betweenness_centrality(graph)
        slow = brute_force_betweenness(graph)
        for node in graph.nodes():
            assert fast[node] == pytest.approx(slow[node], abs=1e-9)
