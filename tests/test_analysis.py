"""Tests for the estimator-comparison analysis helper."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AVAILABLE_ESTIMATORS,
    compare_estimators,
    comparison_table,
)
from repro.centrality.brandes import betweenness_centrality


class TestCompareEstimators:
    def test_basic_comparison(self, karate):
        rows = compare_estimators(
            karate,
            [0, 1, 2, 5, 33],
            epsilon=0.1,
            delta=0.1,
            seed=3,
            estimators=("saphyra", "kadabra"),
        )
        assert [row.name for row in rows] == ["saphyra", "kadabra"]
        for row in rows:
            assert row.max_abs_error is not None and row.max_abs_error < 0.1
            assert row.spearman is not None and row.spearman > 0.5
            assert row.num_samples > 0
            assert set(row.scores) == {0, 1, 2, 5, 33}
        saphyra_row = rows[0]
        assert saphyra_row.false_zeros == 0

    def test_precomputed_ground_truth(self, karate):
        truth = betweenness_centrality(karate)
        rows = compare_estimators(
            karate,
            [0, 1, 2],
            epsilon=0.2,
            delta=0.2,
            seed=1,
            estimators=("saphyra",),
            ground_truth=truth,
        )
        assert rows[0].spearman is not None

    def test_without_ground_truth(self, karate):
        rows = compare_estimators(
            karate,
            [0, 1, 2],
            epsilon=0.2,
            delta=0.2,
            seed=1,
            estimators=("kadabra",),
            compute_ground_truth=False,
        )
        assert rows[0].spearman is None
        assert rows[0].max_abs_error is None
        assert rows[0].scores

    def test_all_available_estimators_run(self, karate):
        rows = compare_estimators(
            karate,
            [0, 1, 33],
            epsilon=0.2,
            delta=0.2,
            seed=2,
            estimators=AVAILABLE_ESTIMATORS,
            max_samples_cap=500,
        )
        assert len(rows) == len(AVAILABLE_ESTIMATORS)

    def test_unknown_estimator_rejected(self, karate):
        with pytest.raises(ValueError, match="unknown"):
            compare_estimators(karate, [0], estimators=("mystery",))


class TestComparisonTable:
    def test_renders(self, karate):
        rows = compare_estimators(
            karate,
            [0, 1, 2],
            epsilon=0.2,
            delta=0.2,
            seed=1,
            estimators=("saphyra", "kadabra"),
        )
        text = comparison_table(rows)
        assert "estimator" in text
        assert "saphyra" in text and "kadabra" in text

    def test_renders_without_ground_truth(self, karate):
        rows = compare_estimators(
            karate,
            [0, 1],
            epsilon=0.2,
            delta=0.2,
            seed=1,
            estimators=("kadabra",),
            compute_ground_truth=False,
        )
        text = comparison_table(rows)
        assert "-" in text
