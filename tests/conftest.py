"""Shared fixtures: small graphs with known structure."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import karate_club_graph
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """K3: one block, no cutpoints, every betweenness is 0."""
    return complete_graph(3)


@pytest.fixture
def path5() -> Graph:
    """Path 0-1-2-3-4: every edge is a bridge, nodes 1-3 are cutpoints."""
    return path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """C6: a single biconnected block."""
    return cycle_graph(6)


@pytest.fixture
def star6() -> Graph:
    """Star with centre 0 and 6 leaves: centre has the only non-zero bc."""
    return star_graph(6)


@pytest.fixture
def barbell() -> Graph:
    """Two K5 cliques joined by a 3-node path: rich block structure."""
    return barbell_graph(5, 3)


@pytest.fixture
def karate() -> Graph:
    """Zachary's karate club (34 nodes, 78 edges)."""
    return karate_club_graph()


@pytest.fixture
def two_triangles_shared_node() -> Graph:
    """Two triangles sharing node 0: 0 is the unique cutpoint."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)])
