"""Tests for the top-k agreement metrics."""

from __future__ import annotations

import pytest

from repro.metrics.topk import bottom_half_spearman, jaccard_at_k, precision_at_k


TRUTH = {node: 10.0 - node for node in range(10)}  # best node is 0


class TestPrecisionAtK:
    def test_perfect(self):
        assert precision_at_k(TRUTH, dict(TRUTH), 3) == 1.0

    def test_partial_overlap(self):
        estimate = dict(TRUTH)
        estimate[0] = -1.0  # true best drops out of the estimated top-3
        assert precision_at_k(TRUTH, estimate, 3) == pytest.approx(2 / 3)

    def test_k_larger_than_set(self):
        assert precision_at_k(TRUTH, dict(TRUTH), 50) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(TRUTH, TRUTH, 0)

    def test_missing_estimates_default_to_zero(self):
        # Truth favours high node ids; an empty estimate makes every score 0
        # and ties resolve toward low ids, so the top-3 sets are disjoint.
        reversed_truth = {node: float(node) for node in range(10)}
        assert precision_at_k(reversed_truth, {}, 3) == 0.0


class TestJaccardAtK:
    def test_perfect(self):
        assert jaccard_at_k(TRUTH, dict(TRUTH), 4) == 1.0

    def test_disjoint_is_low(self):
        estimate = {node: float(node) for node in range(10)}  # reversed
        assert jaccard_at_k(TRUTH, estimate, 3) == 0.0

    def test_bounded(self):
        estimate = dict(TRUTH)
        estimate[1] = 0.0
        value = jaccard_at_k(TRUTH, estimate, 3)
        assert 0.0 <= value <= 1.0


class TestBottomHalfSpearman:
    def test_perfect(self):
        assert bottom_half_spearman(TRUTH, dict(TRUTH)) == pytest.approx(1.0)

    def test_detects_tail_shuffling(self):
        estimate = dict(TRUTH)
        # Shuffle only the low-centrality tail; the full Spearman stays high
        # but the bottom-half correlation drops.
        estimate[8], estimate[9] = estimate[9], estimate[8]
        estimate[6], estimate[7] = estimate[7], estimate[6]
        from repro.metrics.rank_correlation import spearman_rank_correlation

        assert bottom_half_spearman(TRUTH, estimate) < spearman_rank_correlation(
            TRUTH, estimate
        )

    def test_tiny_input(self):
        assert bottom_half_spearman({1: 1.0, 2: 0.5}, {1: 1.0, 2: 0.5}) == 1.0
