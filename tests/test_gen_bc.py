"""Tests for the Gen_bc sampler over the approximate subspace."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import SamplingError
from repro.graphs.generators import path_graph
from repro.saphyra_bc.exact_bc import exact_two_hop_risks
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP


class TestPathValidity:
    def test_paths_are_valid_shortest_paths(self, karate):
        targets = [0, 1, 2, 3, 4]
        space = PersonalizedISP(karate, targets=targets)
        generator = GenBC(space, targets)
        rng = random.Random(3)
        for _ in range(100):
            path = generator.sample_path(rng)
            assert len(path) >= 2
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert karate.has_edge(u, v)
            # Paths never come from the exact subspace.
            assert not (len(path) == 3 and path[1] in generator.target_set)

    def test_paths_within_one_block(self, barbell):
        targets = list(barbell.nodes())[:5]
        space = PersonalizedISP(barbell, targets=targets)
        generator = GenBC(space, targets)
        rng = random.Random(7)
        for _ in range(50):
            path = generator.sample_path(rng)
            assert space.common_block(path[0], path[-1]) is not None

    def test_statistics_tracked(self, karate):
        targets = [0, 1]
        space = PersonalizedISP(karate, targets=targets)
        generator = GenBC(space, targets)
        rng = random.Random(1)
        for _ in range(30):
            generator.sample_path(rng)
        assert generator.stats.samples_returned == 30
        assert generator.stats.pairs_drawn >= 30
        assert generator.acceptance_rate() <= 1.0
        assert sum(generator.stats.path_length_histogram.values()) == 30


class TestLossSampling:
    def test_losses_only_for_inner_targets(self, karate):
        targets = [0, 1, 2, 3]
        space = PersonalizedISP(karate, targets=targets)
        generator = GenBC(space, targets)
        rng = random.Random(9)
        for _ in range(50):
            losses = generator.sample_losses(rng)
            assert all(0 <= index < len(targets) for index in losses)
            assert all(value == 1.0 for value in losses.values())

    def test_empirical_means_match_conditional_expectation(self, karate):
        """The empirical hit frequency from Gen_bc should approximate the
        exhaustively computed conditional expectation on D-tilde."""
        targets = [0, 1, 2, 31, 33]
        space = PersonalizedISP(karate, targets=targets)
        exact = exact_two_hop_risks(space, targets)
        # Conditional expectation on the approximate subspace.
        target_set = set(targets)
        expected = {node: 0.0 for node in targets}
        mass = 0.0
        for path, probability in space.enumerate_paths():
            in_exact = len(path) == 3 and path[1] in target_set
            if in_exact:
                continue
            mass += probability
            for inner in path[1:-1]:
                if inner in target_set:
                    expected[inner] += probability
        expected = {node: value / mass for node, value in expected.items()}

        generator = GenBC(space, targets)
        rng = random.Random(123)
        draws = 4000
        counts = Counter()
        for _ in range(draws):
            for index in generator.sample_losses(rng):
                counts[targets[index]] += 1
        for node in targets:
            assert counts[node] / draws == pytest.approx(expected[node], abs=0.03)
        # Consistency: lambda_exact + mass == 1.
        assert exact.lambda_exact + mass == pytest.approx(1.0, abs=1e-9)


class TestRejectionSafety:
    def test_exhausted_rejections_raise(self):
        """A path graph P3 with both inner nodes as targets: every length-2
        path is exact, shorter blocks only produce length-1 paths, so with the
        exact subspace covering everything interesting the sampler still
        terminates (length-1 paths are never exact).  Force the pathological
        case by marking every path as exact."""
        graph = path_graph(3)
        targets = [1]
        space = PersonalizedISP(graph, targets=targets)
        generator = GenBC(space, targets, max_rejections=10)
        generator._in_exact_subspace = lambda path: True  # type: ignore[assignment]
        with pytest.raises(SamplingError):
            generator.sample_path(random.Random(0))
