"""Tests for edge-list and DIMACS readers/writers."""

from __future__ import annotations

from itertools import islice

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.io import (
    iter_dimacs_arcs,
    iter_edge_list,
    read_coordinates,
    read_dimacs_graph,
    read_edge_list,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(map(frozenset, loaded.edges())) == set(map(frozenset, graph.edges()))

    def test_header_written_and_skipped(self, tmp_path):
        graph = Graph.from_edges([(0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header="test graph\nsecond line")
        text = path.read_text()
        assert text.startswith("# test graph")
        assert read_edge_list(path).number_of_edges() == 1

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n% other comment\n\n1 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 2

    def test_snap_style_duplicate_arcs_collapse(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 1\n")
        assert read_edge_list(path).number_of_edges() == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)

    def test_custom_node_type(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b\nb c\n")
        graph = read_edge_list(path, node_type=str)
        assert graph.has_edge("a", "b")


class TestIterEdgeList:
    def test_matches_reader(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n1 2\n2 3 0.5\n3 3\n3 4\n")
        streamed = list(iter_edge_list(path))
        assert streamed == [(1, 2, None), (2, 3, 0.5), (3, 4, None)]
        graph = read_edge_list(path)
        for u, v, _weight in streamed:
            assert graph.has_edge(u, v)
        assert graph.number_of_edges() == len(streamed)

    def test_lazy_stops_before_malformed_tail(self, tmp_path):
        # A partially-consumed stream must never parse (or reject) the rest
        # of the file — that is what makes it safe on bigger-than-RAM files.
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 3\nthis-is-not-an-edge\n")
        assert list(islice(iter_edge_list(path), 2)) == [(1, 2, None), (2, 3, None)]
        with pytest.raises(GraphError, match="graph.txt:3"):
            list(iter_edge_list(path))

    def test_node_type_and_comments(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("; note\na b\n", encoding="utf-8")
        streamed = list(iter_edge_list(path, node_type=str, comments=(";",)))
        assert streamed == [("a", "b", None)]


class TestIterDimacsArcs:
    def test_matches_reader(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text("c x\np sp 4 4\na 1 2 10\na 2 2 3\na 2 3 5\na 3 4 1\n")
        assert list(iter_dimacs_arcs(path)) == [(1, 2, None), (2, 3, None), (3, 4, None)]
        weighted = list(iter_dimacs_arcs(path, weighted=True))
        assert weighted == [(1, 2, 10.0), (2, 3, 5.0), (3, 4, 1.0)]
        graph = read_dimacs_graph(path, weighted=True)
        for u, v, weight in weighted:
            assert graph.edge_weight(u, v) == weight

    def test_lazy_stops_before_malformed_tail(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text("p sp 3 2\na 1 2 1\nbogus line\n")
        assert list(islice(iter_dimacs_arcs(path), 1)) == [(1, 2, None)]
        with pytest.raises(GraphError, match="graph.gr:3"):
            list(iter_dimacs_arcs(path))

    def test_missing_weight_raises_only_when_weighted(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text("a 1 2\n")
        assert list(iter_dimacs_arcs(path)) == [(1, 2, None)]
        with pytest.raises(GraphError, match="no weight"):
            list(iter_dimacs_arcs(path, weighted=True))


class TestDimacs:
    def test_basic_parse(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text(
            "c comment line\n"
            "p sp 4 6\n"
            "a 1 2 10\n"
            "a 2 1 10\n"
            "a 2 3 5\n"
            "a 3 4 1\n"
        )
        graph = read_dimacs_graph(path)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.has_edge(1, 2)

    def test_declared_isolated_nodes_created(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text("p sp 5 1\na 1 2 3\n")
        graph = read_dimacs_graph(path)
        assert graph.number_of_nodes() == 5
        assert graph.degree(5) == 0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "graph.gr"
        path.write_text("x 1 2\n")
        with pytest.raises(GraphError):
            read_dimacs_graph(path)

    def test_coordinates(self, tmp_path):
        path = tmp_path / "graph.co"
        path.write_text("c header\nv 1 -73992127 40748895\nv 2 -73990000 40700000\n")
        coords = read_coordinates(path)
        assert coords[1] == (-73992127, 40748895)
        assert len(coords) == 2

    def test_malformed_coordinates_raise(self, tmp_path):
        path = tmp_path / "graph.co"
        path.write_text("v 1 2\n")
        with pytest.raises(GraphError):
            read_coordinates(path)
