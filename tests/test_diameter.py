"""Tests for diameter estimation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.components import largest_connected_component
from repro.graphs.diameter import (
    eccentricity,
    estimate_diameter,
    estimate_subset_diameter,
    exact_diameter,
    exact_subset_diameter,
    two_sweep_lower_bound,
)
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph


class TestExact:
    def test_path(self):
        assert exact_diameter(path_graph(6)) == 5

    def test_cycle(self):
        assert exact_diameter(cycle_graph(8)) == 4

    def test_karate(self, karate):
        assert exact_diameter(karate) == 5

    def test_eccentricity(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2


class TestEstimates:
    def test_two_sweep_is_lower_bound(self, karate):
        assert two_sweep_lower_bound(karate, seed=1) <= exact_diameter(karate)

    def test_two_sweep_exact_on_path(self):
        assert two_sweep_lower_bound(path_graph(10), seed=3) == 9

    def test_estimate_is_upper_bound(self, karate):
        assert estimate_diameter(karate, seed=2) >= exact_diameter(karate)

    def test_estimate_single_node(self):
        graph = Graph()
        graph.add_node(0)
        assert estimate_diameter(graph, seed=1) == 0

    def test_estimate_empty_raises(self):
        with pytest.raises(GraphError):
            estimate_diameter(Graph())

    def test_two_sweep_empty_raises(self):
        with pytest.raises(GraphError):
            two_sweep_lower_bound(Graph())

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_estimate_bounds_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 25), 0.2, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 2:
            return
        graph = graph.subgraph(component)
        exact = exact_diameter(graph)
        estimate = estimate_diameter(graph, seed=rng.randint(0, 999))
        assert exact <= estimate <= 2 * exact


class TestSubsetDiameter:
    def test_exact_subset(self, path5):
        assert exact_subset_diameter(path5, [0, 4]) == 4
        assert exact_subset_diameter(path5, [1, 2]) == 1
        assert exact_subset_diameter(path5, [2]) == 0

    def test_estimate_is_upper_bound(self, karate):
        subset = list(range(0, 20, 2))
        exact = exact_subset_diameter(karate, subset)
        estimate = estimate_subset_diameter(karate, subset, seed=5)
        assert estimate >= exact

    def test_small_subsets(self, karate):
        assert estimate_subset_diameter(karate, [3], seed=1) == 0
        assert estimate_subset_diameter(karate, [], seed=1) == 0

    def test_missing_nodes_ignored(self, karate):
        assert estimate_subset_diameter(karate, [0, 999], seed=1) == 0
