"""Tests for k-path centrality (the framework's second instantiation)."""

from __future__ import annotations

import pytest

from repro.centrality.kpath import (
    KPathCentralityEstimator,
    KPathProblem,
    kpath_centrality_exact,
)
from repro.errors import GraphError
from repro.graphs.generators import complete_graph, cycle_graph, star_graph
from repro.graphs.graph import Graph
from repro.metrics.rank_correlation import spearman_rank_correlation


class TestExactKPath:
    def test_cycle_symmetry(self):
        exact = kpath_centrality_exact(cycle_graph(6), k=3)
        values = list(exact.values())
        assert max(values) == pytest.approx(min(values))

    def test_star_center_dominates(self):
        exact = kpath_centrality_exact(star_graph(5), k=2)
        assert exact[0] > max(exact[leaf] for leaf in range(1, 6))

    def test_k1_matches_neighbor_formula(self):
        graph = complete_graph(4)
        exact = kpath_centrality_exact(graph, k=1)
        # From a random start, one step lands on each specific node with
        # probability (1/n) * sum over its neighbours of 1/deg = 3/(4*3) = 1/4.
        assert all(value == pytest.approx(0.25) for value in exact.values())

    def test_values_are_probabilities(self, karate):
        exact = kpath_centrality_exact(karate, k=2)
        assert all(0.0 <= value <= 1.0 for value in exact.values())

    def test_isolated_node_rejected(self):
        graph = Graph.from_edges([(0, 1)], nodes=[2])
        with pytest.raises(GraphError):
            kpath_centrality_exact(graph, k=2)

    def test_invalid_k(self, karate):
        with pytest.raises(ValueError):
            kpath_centrality_exact(karate, k=0)


class TestKPathProblem:
    def test_exact_evaluation_matches_formula(self, karate):
        problem = KPathProblem(karate, [0, 1, 2], k=4)
        evaluation = problem.exact_evaluation()
        assert evaluation.lambda_exact == pytest.approx(0.25)
        n = karate.number_of_nodes()
        expected = sum(1 / karate.degree(u) for u in karate.neighbors(0)) / (n * 4)
        assert evaluation.risks[0] == pytest.approx(expected)

    def test_sample_losses_sparse(self, karate):
        problem = KPathProblem(karate, [0, 1, 2], k=3)
        losses = problem.sample_losses(rng=5)
        assert all(index in (0, 1, 2) for index in losses)
        assert all(value == 1.0 for value in losses.values())

    def test_duplicate_targets_rejected(self, karate):
        with pytest.raises(ValueError):
            KPathProblem(karate, [0, 0], k=2)

    def test_missing_target_rejected(self, karate):
        with pytest.raises(GraphError):
            KPathProblem(karate, [999], k=2)

    def test_vc_dimension_bounded_by_k(self, karate):
        problem = KPathProblem(karate, list(range(20)), k=3)
        assert problem.vc_dimension() <= 2  # floor(log2(3)) + 1


class TestEstimator:
    def test_estimates_match_exact(self, karate):
        k = 3
        targets = sorted(karate.nodes())[:12]
        estimator = KPathCentralityEstimator(k=k, epsilon=0.03, delta=0.05, seed=9)
        result = estimator.rank(karate, targets)
        exact = kpath_centrality_exact(karate, k)
        for node in targets:
            assert abs(result.scores()[node] - exact[node]) < 0.03
        correlation = spearman_rank_correlation(
            {node: exact[node] for node in targets}, result.scores()
        )
        assert correlation > 0.9

    def test_k1_is_fully_exact(self, karate):
        estimator = KPathCentralityEstimator(k=1, epsilon=0.05, delta=0.05, seed=1)
        result = estimator.rank(karate, [0, 1, 2])
        assert result.converged_by == "exact"
        assert result.num_samples == 0
        exact = kpath_centrality_exact(karate, 1)
        for node in (0, 1, 2):
            assert result.scores()[node] == pytest.approx(exact[node])
