"""Tests for the mutation journal and delta-aware cache invalidation (PR 8).

Three layers are covered:

* the :class:`~repro.graphs.delta.MutationJournal` mechanics and the
  ``dag_cache_delta`` / ``delta_journal_size`` knob protocol;
* incremental CSR patching in :func:`repro.graphs.csr.as_csr` — patched
  snapshots must be **byte-identical** to a from-scratch build;
* delta validation in ``SourceDAGCache`` / ``GroundTruthCache`` — cached
  entries survive a version bump iff the journal proves them unaffected,
  and the mutate-then-query equivalence suite asserts ``on`` == ``off``
  == a freshly built graph, bit for bit.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import dag_cache as dag_cache_module
from repro.engine.dag_cache import SourceDAGCache
from repro.errors import GraphError
from repro.graphs import csr as csr_module
from repro.graphs import delta as delta_module
from repro.graphs import sssp as sssp_module
from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.delta import (
    AUTO_DELTA_VALIDATION_LIMIT,
    DAG_CACHE_DELTA_ENV_VAR,
    DELTA_JOURNAL_SIZE_ENV_VAR,
    EdgeDelta,
    MutationJournal,
    OP_DELETE,
    OP_INSERT,
    OP_REWEIGHT,
    STRUCTURAL_DELTA,
    delta_affects_source,
    deltas_between,
    resolve_dag_cache_delta,
    resolve_delta_journal_size,
    set_default_dag_cache_delta,
    set_default_delta_journal_size,
)
from repro.graphs.generators import (
    erdos_renyi_graph,
    path_graph,
    weighted_barabasi_albert_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture(autouse=True)
def _reset_delta_knobs(monkeypatch):
    # Values exported by the invoking shell (or leaked by another test's
    # EnvMirroredOverride) would change the resolution behaviour asserted
    # here; the setters are process-wide and sticky, so always restore.
    monkeypatch.delenv(DAG_CACHE_DELTA_ENV_VAR, raising=False)
    monkeypatch.delenv(DELTA_JOURNAL_SIZE_ENV_VAR, raising=False)
    yield
    set_default_dag_cache_delta(None)
    set_default_delta_journal_size(None)


def _insert(u, v, w=1.0):
    return EdgeDelta(OP_INSERT, u, v, None, w)


class TestMutationJournal:
    def test_contiguous_record_and_slice(self):
        journal = MutationJournal(base_version=5, cap=8)
        journal.record(6, _insert(0, 1))
        journal.record(7, _insert(1, 2))
        assert journal.version == 7
        assert journal.slice(5, 7) == [_insert(0, 1), _insert(1, 2)]
        assert journal.slice(6, 7) == [_insert(1, 2)]
        assert journal.slice(7, 7) == []

    def test_uncovered_ranges_return_none(self):
        journal = MutationJournal(base_version=5, cap=8)
        journal.record(6, _insert(0, 1))
        assert journal.slice(4, 6) is None  # before coverage
        assert journal.slice(5, 7) is None  # journal is not at version 7
        assert journal.slice(6, 5) is None  # inverted range

    def test_structural_entries_poison_the_range(self):
        journal = MutationJournal(base_version=0, cap=8)
        journal.record(1, _insert(0, 1))
        journal.record(2, STRUCTURAL_DELTA)
        journal.record(3, _insert(1, 2))
        assert journal.slice(0, 3) is None
        assert journal.slice(1, 3) is None
        assert journal.slice(2, 3) == [_insert(1, 2)]  # after the marker

    def test_cap_overflow_drops_oldest(self):
        journal = MutationJournal(base_version=0, cap=2)
        for version in (1, 2, 3):
            journal.record(version, _insert(0, version))
        assert journal.overflows == 1
        assert journal.base_version == 1
        assert journal.slice(0, 3) is None  # oldest entry is gone
        assert journal.slice(1, 3) == [_insert(0, 2), _insert(0, 3)]

    def test_contiguity_break_resets_coverage(self):
        journal = MutationJournal(base_version=0, cap=8)
        journal.record(1, _insert(0, 1))
        journal.record(5, _insert(0, 2))  # versions 2-4 never journalled
        assert journal.slice(0, 5) is None
        assert journal.slice(4, 5) == [_insert(0, 2)]


class TestKnobProtocol:
    def test_default_is_auto(self):
        assert resolve_dag_cache_delta() == "auto"
        assert resolve_dag_cache_delta(None) == "auto"

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(DAG_CACHE_DELTA_ENV_VAR, "off")
        assert resolve_dag_cache_delta() == "off"
        # An explicit argument still wins over the environment.
        assert resolve_dag_cache_delta("on") == "on"

    def test_setter_beats_env_and_mirrors(self, monkeypatch):
        import os

        monkeypatch.setenv(DAG_CACHE_DELTA_ENV_VAR, "off")
        set_default_dag_cache_delta("on")
        assert resolve_dag_cache_delta() == "on"
        # Mirrored so spawn workers resolve the same mode.
        assert os.environ[DAG_CACHE_DELTA_ENV_VAR] == "on"
        set_default_dag_cache_delta(None)
        assert os.environ[DAG_CACHE_DELTA_ENV_VAR] == "off"  # restored
        assert resolve_dag_cache_delta() == "off"

    def test_invalid_mode_rejected_eagerly(self, monkeypatch):
        with pytest.raises(ValueError, match="dag_cache_delta"):
            set_default_dag_cache_delta("sometimes")
        with pytest.raises(ValueError, match=DAG_CACHE_DELTA_ENV_VAR):
            resolve_dag_cache_delta("sometimes")
        monkeypatch.setenv(DAG_CACHE_DELTA_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=DAG_CACHE_DELTA_ENV_VAR):
            resolve_dag_cache_delta()

    def test_journal_size_resolution(self, monkeypatch):
        assert resolve_delta_journal_size() == delta_module.DEFAULT_DELTA_JOURNAL_SIZE
        monkeypatch.setenv(DELTA_JOURNAL_SIZE_ENV_VAR, "17")
        assert resolve_delta_journal_size() == 17
        set_default_delta_journal_size(9)
        assert resolve_delta_journal_size() == 9
        set_default_delta_journal_size(None)
        assert resolve_delta_journal_size() == 17

    def test_journal_size_validation(self, monkeypatch):
        with pytest.raises(ValueError):
            set_default_delta_journal_size(0)
        with pytest.raises(TypeError):
            set_default_delta_journal_size(True)
        monkeypatch.setenv(DELTA_JOURNAL_SIZE_ENV_VAR, "many")
        with pytest.raises(ValueError, match=DELTA_JOURNAL_SIZE_ENV_VAR):
            resolve_delta_journal_size()
        monkeypatch.setenv(DELTA_JOURNAL_SIZE_ENV_VAR, "0")
        with pytest.raises(ValueError, match=DELTA_JOURNAL_SIZE_ENV_VAR):
            resolve_delta_journal_size()

    def test_experiment_config_validates_fields(self):
        from repro.experiments.config import ExperimentConfig

        assert ExperimentConfig(dag_cache_delta="on").dag_cache_delta == "on"
        assert ExperimentConfig(delta_journal_size=32).delta_journal_size == 32
        with pytest.raises(ValueError, match="dag_cache_delta"):
            ExperimentConfig(dag_cache_delta="bogus")
        with pytest.raises(ValueError, match="delta_journal_size"):
            ExperimentConfig(delta_journal_size=0)

    def test_off_disables_journaling_entirely(self):
        set_default_dag_cache_delta("off")
        graph = path_graph(4)
        assert delta_module.track(graph) is None
        as_csr(graph)
        assert graph._journal is None  # mutation hooks stay one-None-check
        graph.add_edge(0, 3)
        assert deltas_between(graph, graph._version - 1) is None

    def test_track_tolerates_frozen_snapshots(self):
        # Bare CSR payloads (shared-memory workers) have no journal slot;
        # they never mutate, so tracking is a polite no-op.
        snapshot = CSRGraph.from_graph(path_graph(3))
        assert delta_module.track(snapshot) is None


class TestNoOpMutationsStayVersionNeutral:
    """Satellite (a): no-op mutations must not bump versions, must not
    pollute the journal, and must keep every cache warm."""

    def test_add_existing_edge_is_version_neutral(self):
        graph = path_graph(4)
        delta_module.track(graph)
        version = graph._version
        graph.add_edge(0, 1)  # already present (stored weight kept)
        graph.add_edge(1, 0)  # symmetric spelling
        graph.add_node(2)  # already present
        assert graph._version == version
        assert deltas_between(graph, version) == []

    def test_set_edge_weight_to_current_value_is_version_neutral(self):
        graph = Graph.from_edges([(0, 1, 2.5), (1, 2)])
        delta_module.track(graph)
        version = graph._version
        graph.set_edge_weight(0, 1, 2.5)
        graph.set_edge_weight(1, 2, 1)  # unit edge, unit value
        graph.set_edge_weight(1, 2, 1.0)  # float spelling of unit
        assert graph._version == version
        assert deltas_between(graph, version) == []

    def test_noop_mutations_keep_caches_warm(self):
        graph = path_graph(6)
        cache = SourceDAGCache(max_entries=8)
        snapshot = as_csr(graph)
        dag = cache.dag(graph, 0, backend="dict")
        graph.add_edge(0, 1)
        graph.set_edge_weight(0, 1, 1)
        assert as_csr(graph) is snapshot
        assert cache.dag(graph, 0, backend="dict") is dag
        assert cache.evictions == 0


def _assert_patched_bytes_match(graph):
    """as_csr(graph) must equal a from-scratch CSR build, byte for byte."""
    patched = as_csr(graph)
    fresh = CSRGraph.from_graph(graph)
    assert patched.labels == fresh.labels
    assert patched.indptr.tobytes() == fresh.indptr.tobytes()
    assert patched.indices.tobytes() == fresh.indices.tobytes()
    if fresh.weights is None:
        assert patched.weights is None
    else:
        assert patched.weights is not None
        assert patched.weights.tobytes() == fresh.weights.tobytes()
    return patched


@pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
class TestIncrementalCSRPatching:
    """The patched snapshot must be byte-identical to a rebuild, in every
    mutation mix the journal can cover — and must actually take the patch
    path rather than silently rebuilding."""

    @pytest.fixture(params=["auto", "on"])
    def mode(self, request):
        set_default_dag_cache_delta(request.param)
        return request.param

    def test_insert_patch(self, mode):
        graph = path_graph(6)
        as_csr(graph)
        graph.add_edge(0, 5)
        _assert_patched_bytes_match(graph)

    def test_delete_patch(self, mode):
        graph = path_graph(6)
        as_csr(graph)
        graph.remove_edge(2, 3)
        _assert_patched_bytes_match(graph)

    def test_reweight_patch_flips_weighted_on(self, mode):
        graph = path_graph(6)
        as_csr(graph)
        assert as_csr(graph).weights is None
        graph.set_edge_weight(1, 2, 4.0)
        patched = _assert_patched_bytes_match(graph)
        assert patched.weights is not None  # unweighted -> weighted flip

    def test_reweight_back_to_unit_flips_weighted_off(self, mode):
        graph = Graph.from_edges([(0, 1, 3.0), (1, 2), (2, 3)])
        as_csr(graph)
        graph.set_edge_weight(0, 1, 1)
        patched = _assert_patched_bytes_match(graph)
        assert patched.weights is None  # weighted -> unweighted flip

    def test_delete_then_readd_appends_at_segment_end(self, mode):
        # Dict semantics: re-adding a removed edge appends it at the end of
        # both endpoints' neighbour order; the patch must replay that.
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        as_csr(graph)
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1, weight=7.0)
        _assert_patched_bytes_match(graph)

    def test_random_edit_storm(self, mode):
        rng = random.Random(42)
        graph = erdos_renyi_graph(30, 0.15, seed=7)
        as_csr(graph)
        nodes = list(graph.nodes())
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            if graph.has_edge(u, v):
                if rng.random() < 0.5:
                    graph.remove_edge(u, v)
                else:
                    graph.set_edge_weight(u, v, rng.randint(2, 9) * 1.0)
            else:
                graph.add_edge(u, v, weight=rng.choice([1, 2.5, 8.0]))
            _assert_patched_bytes_match(graph)

    def test_patch_path_actually_taken(self, mode, monkeypatch):
        graph = path_graph(8)
        as_csr(graph)
        graph.add_edge(0, 7)

        def _no_rebuild(*args, **kwargs):
            raise AssertionError("expected an incremental patch, got a rebuild")

        monkeypatch.setattr(CSRGraph, "from_graph", staticmethod(_no_rebuild))
        patched = as_csr(graph)
        zero = patched.index[0]
        row = patched.indices[patched.indptr[zero]:patched.indptr[zero + 1]]
        assert patched.index[7] in list(row)

    def test_structural_change_falls_back_to_rebuild(self, mode):
        graph = path_graph(5)
        as_csr(graph)
        graph.add_edge(4, 99)  # new node: label set changes
        _assert_patched_bytes_match(graph)

    def test_journal_overflow_falls_back_to_rebuild(self, mode):
        set_default_delta_journal_size(2)
        graph = path_graph(8)
        as_csr(graph)
        for k in range(5):
            graph.add_edge(0, k + 2)
        assert deltas_between(graph, graph._version - 5) is None
        _assert_patched_bytes_match(graph)

    def test_off_mode_still_rebuilds_correctly(self):
        set_default_dag_cache_delta("off")
        graph = path_graph(6)
        as_csr(graph)
        graph.add_edge(0, 5)
        _assert_patched_bytes_match(graph)


def _weighted_y_graph():
    """0 -5- 1 -5- 2 plus a heavy chord 0 -100- 2.

    The chord is on no shortest path, so edits to it are invisible to some
    sources and visible to others — the partial-retention fixture.
    """
    return Graph.from_edges([(0, 1, 5.0), (1, 2, 5.0), (0, 2, 100.0)])


class TestSourceDAGCacheDeltaValidation:
    def _warm_weighted_rows(self, cache, graph, sources):
        for source in sources:
            cache.distances(graph, source, weighted=True)

    def test_weighted_rows_survive_irrelevant_edits(self):
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        misses = cache.misses
        # Reweighting the unused chord cannot move any weighted distance.
        graph.set_edge_weight(0, 2, 90.0)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        stats = cache.stats()
        assert cache.misses == misses  # every row survived -> pure hits
        assert stats["delta_retained"] == 3
        assert stats["delta_evictions"] == 0

    def test_partial_retention_across_sources(self):
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        # Dropping the chord to 8.0 shortens 0<->2 (10 -> 8) but leaves
        # source 1 untouched: d1[0]=5, d1[2]=5, and 5+8 shortens nothing.
        graph.set_edge_weight(0, 2, 8.0)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        stats = cache.stats()
        assert stats["delta_retained"] == 1  # source 1 survived
        assert stats["delta_evictions"] == 2  # sources 0 and 2 recomputed
        assert cache.distances(graph, 0, weighted=True)[2] == 8.0

    def test_hop_entries_evict_on_shortcut_insert(self):
        # In hop space every edge has weight 1: any insert between nodes
        # more than one hop apart is a shortcut, whatever its stored weight.
        graph = path_graph(6)
        cache = SourceDAGCache(max_entries=16)
        stale = cache.distances(graph, 0)
        graph.add_edge(0, 5, weight=1000.0)
        fresh = cache.distances(graph, 0)
        assert stale[5] == 5 and fresh[5] == 1
        assert cache.stats()["delta_evictions"] == 1

    def test_hop_entries_immune_to_reweights(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
        cache = SourceDAGCache(max_entries=16)
        row = cache.distances(graph, 0)
        dag = cache.dag(graph, 0, backend="dict")
        graph.set_edge_weight(1, 2, 9.0)
        assert cache.distances(graph, 0) is row
        assert cache.dag(graph, 0, backend="dict") is dag
        assert cache.stats()["delta_retained"] == 2

    def test_delete_on_shortest_path_evicts(self):
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0,))
        graph.remove_edge(0, 1)  # on every shortest path from 0
        assert cache.distances(graph, 0, weighted=True)[2] == 100.0
        assert cache.stats()["delta_evictions"] == 1

    def test_delete_off_shortest_path_retains(self):
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0,))
        graph.remove_edge(0, 2)  # the unused chord
        assert cache.distances(graph, 0, weighted=True)[2] == 10.0
        stats = cache.stats()
        assert stats["delta_retained"] == 1 and stats["delta_evictions"] == 0

    def test_tie_creating_insert_evicts_dag_keeps_rows(self):
        # 0-1-2 and 0-3; inserting 3-2 creates a second equal-length path
        # to 2: distances stand, path counts do not.
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 3)])
        cache = SourceDAGCache(max_entries=16)
        row = cache.distances(graph, 0)
        stale_dag = cache.dag(graph, 0, backend="dict")
        assert stale_dag.sigma[2] == 1
        graph.add_edge(3, 2)
        assert cache.distances(graph, 0) is row  # distances unaffected
        fresh_dag = cache.dag(graph, 0, backend="dict")
        assert fresh_dag.sigma[2] == 2  # tie was real
        stats = cache.stats()
        assert stats["delta_retained"] >= 1
        assert stats["delta_evictions"] == 1

    def test_journal_overflow_counts_and_evicts_wholesale(self):
        set_default_delta_journal_size(2)
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        for _ in range(4):  # blow the 2-entry cap with no-move reweights
            graph.set_edge_weight(0, 2, 90.0)
            graph.set_edge_weight(0, 2, 100.0)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        stats = cache.stats()
        assert stats["journal_overflows"] == 1
        assert stats["delta_retained"] == 0
        assert stats["evictions"] == 3

    def test_auto_mode_bounds_the_validation_scan(self):
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (1,))
        warmed_at = graph._version
        for k in range(AUTO_DELTA_VALIDATION_LIMIT + 1):
            graph.set_edge_weight(0, 2, 90.0 + (k % 2))
        assert deltas_between(graph, warmed_at) is not None  # covered...
        self._warm_weighted_rows(cache, graph, (1,))
        stats = cache.stats()
        assert stats["journal_overflows"] == 1  # ...but auto bailed out
        assert stats["delta_retained"] == 0

    def test_on_mode_validates_past_the_auto_limit(self):
        set_default_dag_cache_delta("on")
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (1,))
        for k in range(AUTO_DELTA_VALIDATION_LIMIT + 1):
            graph.set_edge_weight(0, 2, 90.0 + (k % 2))
        self._warm_weighted_rows(cache, graph, (1,))
        assert cache.stats()["delta_retained"] == 1

    def test_off_mode_is_the_historical_wholesale_eviction(self):
        set_default_dag_cache_delta("off")
        graph = _weighted_y_graph()
        cache = SourceDAGCache(max_entries=16)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        graph.set_edge_weight(0, 2, 90.0)
        self._warm_weighted_rows(cache, graph, (0, 1, 2))
        stats = cache.stats()
        assert stats["delta_retained"] == 0
        assert stats["journal_overflows"] == 0  # off: not even counted
        assert stats["evictions"] == 3

    def test_stats_exposes_the_delta_counters(self):
        stats = SourceDAGCache(max_entries=2).stats()
        for key in ("delta_retained", "delta_evictions", "journal_overflows"):
            assert stats[key] == 0


class TestGroundTruthCacheFencing:
    def test_mutation_forces_recompute(self):
        from repro.datasets.ground_truth import GroundTruthCache

        cache = GroundTruthCache()
        graph = path_graph(5)
        stale = cache.get("p5", graph)
        graph.add_edge(0, 4)  # cycle: endpoints lose all betweenness
        fresh = cache.get("p5", graph)
        assert stale is not fresh
        assert fresh != stale
        assert cache.stats()["delta_evictions"] == 1

    def test_reweight_retained_under_hop_metric(self):
        from repro.datasets.ground_truth import GroundTruthCache

        sssp_module.set_default_weighted("off")
        try:
            cache = GroundTruthCache()
            graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
            truth = cache.get("w", graph)
            graph.set_edge_weight(1, 2, 9.0)  # invisible to hop betweenness
            assert cache.get("w", graph) is truth
            assert cache.stats()["delta_retained"] == 1
        finally:
            sssp_module.set_default_weighted(None)

    def test_reweight_not_retained_under_auto_routing(self):
        from repro.datasets.ground_truth import GroundTruthCache

        # Under weighted=auto a reweight can change the routed metric, so
        # the conservative answer is a recompute.
        cache = GroundTruthCache()
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
        truth = cache.get("w", graph)
        graph.set_edge_weight(1, 2, 9.0)
        assert cache.get("w", graph) is not truth
        assert cache.stats()["delta_evictions"] == 1

    def test_disk_reload_not_used_for_stale_entries(self, tmp_path):
        from repro.datasets.ground_truth import GroundTruthCache

        cache = GroundTruthCache(cache_dir=tmp_path)
        graph = path_graph(5)
        stale = cache.get("p5", graph)
        graph.add_edge(0, 4)
        fresh = cache.get("p5", graph)
        assert fresh != stale
        # The overwritten file now holds the fresh values.
        rebooted = GroundTruthCache(cache_dir=tmp_path)
        assert rebooted.get("p5", graph) == fresh


def _mutation_script(graph):
    """A deterministic edit stream hitting every delta op, including the
    adversarial cases: a deletion on a shortest path and a tie-creating
    insert."""
    edges = sorted((u, v) if u <= v else (v, u) for u, v in graph.edges())
    u0, v0 = edges[0]
    yield ("add", u0, (u0 + 7) % graph.number_of_nodes())
    yield ("reweight", u0, v0, 25.0)
    yield ("remove", u0, v0)  # likely on a shortest path: must evict
    yield ("add", u0, v0)  # re-add as a unit edge
    u1, v1 = edges[1]
    yield ("reweight", u1, v1, 2.0)


def _apply(graph, step):
    op = step[0]
    if op == "add":
        _, u, v = step
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    elif op == "remove":
        _, u, v = step
        graph.remove_edge(u, v)
    else:
        _, u, v, w = step
        graph.set_edge_weight(u, v, w)


def _dag_signature(dag, targets, seed):
    """Backend-neutral, bit-exact signature of a cached DAG."""
    if hasattr(dag, "csr"):  # CSRShortestPathDAG (index space)
        labels = dag.csr.labels
        index = dag.csr.index
        dist = {
            labels[i]: dag.dist[i] for i in range(len(labels)) if dag.dist[i] >= 0
        }
        sigma = {label: int(dag.sigma[index[label]]) for label in dist}
        paths = tuple(
            tuple(
                labels[i]
                for i in dag.sample_path_indices(index[t], random.Random(seed))
            )
            for t in targets
            if t in dist
        )
        dist = {k: float(v) if dag.weighted else int(v) for k, v in dist.items()}
    else:  # ShortestPathDAG (label space)
        dist = dict(dag.distances)
        sigma = {k: int(dag.sigma[k]) for k in dist}
        paths = tuple(
            tuple(dag.sample_path(t, random.Random(seed)))
            for t in targets
            if t in dist
        )
    return dist, sigma, paths


class TestMutateThenQueryEquivalence:
    """Satellite (c): with delta invalidation on, every mutate-then-query
    result is bit-identical to delta off and to a freshly built graph."""

    def _scenario(self, mode, backend, *, weighted, journal_cap=None):
        set_default_dag_cache_delta(mode)
        if journal_cap is not None:
            set_default_delta_journal_size(journal_cap)
        if weighted:
            graph = weighted_barabasi_albert_graph(40, 2, seed=11)
        else:
            graph = erdos_renyi_graph(40, 0.12, seed=11)
        cache = SourceDAGCache(max_entries=64)
        sources = (0, 7, 19)
        targets = (3, 25, 39)
        out = []
        for step in _mutation_script(graph):
            try:
                _apply(graph, step)
            except GraphError:
                continue
            for source in sources:
                dag = cache.dag(
                    graph, source, backend=backend, weighted=weighted
                )
                out.append(_dag_signature(dag, targets, seed=5))
                row = cache.distances(graph, source, weighted=weighted)
                out.append(dict(row) if isinstance(row, dict) else dict(
                    zip(as_csr(graph).labels, row)
                ))
            # A fresh graph with the identical adjacency order is the
            # ground truth: same traversals, no cache history at all.
            fresh = cache.dag(
                graph.copy(), sources[0], backend=backend, weighted=weighted
            )
            out.append(_dag_signature(fresh, targets, seed=5))
        return out, cache.stats()

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_delta_on_off_and_fresh_agree(self, backend, weighted):
        if backend == "csr" and not csr_module.HAS_NUMPY:
            pytest.skip("needs numpy")
        on, on_stats = self._scenario("on", backend, weighted=weighted)
        off, off_stats = self._scenario("off", backend, weighted=weighted)
        assert on == off
        assert on_stats["delta_retained"] > 0  # retention actually fired
        assert off_stats["delta_retained"] == 0

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_equivalence_survives_journal_overflow(self, backend):
        if backend == "csr" and not csr_module.HAS_NUMPY:
            pytest.skip("needs numpy")
        on, _ = self._scenario("on", backend, weighted=True, journal_cap=1)
        set_default_delta_journal_size(None)
        off, _ = self._scenario("off", backend, weighted=True)
        assert on == off

    def test_exact_betweenness_identical_after_mutations(self):
        from repro.centrality.brandes import betweenness_centrality

        def run(mode):
            set_default_dag_cache_delta(mode)
            graph = weighted_barabasi_albert_graph(40, 2, seed=11)
            cache = SourceDAGCache(max_entries=64)
            for step in _mutation_script(graph):
                try:
                    _apply(graph, step)
                except GraphError:
                    continue
                cache.distances(graph, 0, weighted=True)
            return graph, betweenness_centrality(graph, normalized=True)

        graph_on, scores_on = run("on")
        _, scores_off = run("off")
        assert scores_on == scores_off
        assert scores_on == betweenness_centrality(
            graph_on.copy(), normalized=True
        )

    @pytest.mark.skipif(not csr_module.HAS_NUMPY, reason="needs numpy")
    def test_estimator_equivalence_through_the_default_cache(self):
        from repro.baselines import RiondatoKornaropoulos

        def run(mode, workers):
            set_default_dag_cache_delta(mode)
            dag_cache_module.clear_default_dag_cache()
            dag_cache_module.set_dag_cache_enabled(True)
            try:
                graph = weighted_barabasi_albert_graph(60, 2, seed=13)
                est = RiondatoKornaropoulos(
                    0.3, 0.1, seed=21, backend="csr", workers=workers,
                    max_samples_cap=200,
                )
                before = est.estimate(graph).scores
                u, v, w = next(iter(graph.weighted_edges()))
                graph.set_edge_weight(u, v, float(w) + 50.0)
                graph.add_edge(0, 41, weight=500.0)
                after = est.estimate(graph).scores
                return before, after
            finally:
                dag_cache_module.set_dag_cache_enabled(None)
                dag_cache_module.clear_default_dag_cache()

        on = run("on", workers=0)
        off = run("off", workers=0)
        assert on == off
        assert run("on", workers=2) == off  # worker pool leg


class TestDeltaAffectsSource:
    """Direct decision-table checks for the O(1) validity test."""

    def _dist(self, mapping):
        return lambda node: mapping.get(node)

    def test_both_unreachable_is_unaffected(self):
        dist = self._dist({0: 0.0})
        delta = EdgeDelta(OP_INSERT, 5, 6, None, 1.0)
        assert not delta_affects_source(
            delta, dist, weighted=True, tie_sensitive=True
        )

    def test_one_reachable_endpoint_evicts(self):
        dist = self._dist({0: 0.0, 1: 1.0})
        delta = EdgeDelta(OP_INSERT, 1, 6, None, 1.0)
        assert delta_affects_source(
            delta, dist, weighted=True, tie_sensitive=False
        )

    def test_insert_tie_only_matters_when_tie_sensitive(self):
        dist = self._dist({0: 0.0, 1: 1.0, 2: 2.0, 3: 1.0})
        tie = EdgeDelta(OP_INSERT, 3, 2, None, 1.0)
        assert not delta_affects_source(
            tie, dist, weighted=True, tie_sensitive=False
        )
        assert delta_affects_source(
            tie, dist, weighted=True, tie_sensitive=True
        )

    def test_hop_metric_ignores_stored_weights(self):
        dist = self._dist({0: 0, 1: 1, 2: 2, 5: 5})
        heavy = EdgeDelta(OP_INSERT, 0, 5, None, 1000.0)
        assert delta_affects_source(
            heavy, dist, weighted=False, tie_sensitive=False
        )
        reweight = EdgeDelta(OP_REWEIGHT, 0, 1, 1.0, 1000.0)
        assert not delta_affects_source(
            reweight, dist, weighted=False, tie_sensitive=True
        )

    def test_weight_increase_matters_iff_edge_was_shortest(self):
        dist = self._dist({0: 0.0, 1: 2.0, 2: 7.0})
        on_path = EdgeDelta(OP_REWEIGHT, 0, 1, 2.0, 3.0)
        assert delta_affects_source(
            on_path, dist, weighted=True, tie_sensitive=False
        )
        off_path = EdgeDelta(OP_REWEIGHT, 1, 2, 9.0, 12.0)
        assert not delta_affects_source(
            off_path, dist, weighted=True, tie_sensitive=False
        )

    def test_structural_always_affects(self):
        assert delta_affects_source(
            STRUCTURAL_DELTA,
            self._dist({}),
            weighted=False,
            tie_sensitive=False,
        )
