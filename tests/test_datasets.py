"""Tests for dataset surrogates, the registry, subsets and ground truth."""

from __future__ import annotations

import pytest

from repro.centrality.brandes import betweenness_centrality
from repro.datasets.ground_truth import GroundTruthCache, exact_betweenness
from repro.datasets.registry import PAPER_NETWORKS, available_datasets, load
from repro.datasets.subsets import (
    geographic_subset,
    l_hop_subset,
    random_subset,
    random_subsets,
    road_areas,
    subsets_by_size,
)
from repro.datasets.synthetic import (
    karate_club_graph,
    road_surrogate,
    social_surrogate,
)
from repro.errors import DatasetError, GraphError
from repro.graphs.components import is_connected


class TestSyntheticGenerators:
    def test_karate_club(self):
        graph = karate_club_graph()
        assert graph.number_of_nodes() == 34
        assert graph.number_of_edges() == 78
        assert is_connected(graph)

    def test_social_surrogate_structure(self):
        graph = social_surrogate(300, pendant_fraction=0.4, seed=1)
        assert graph.number_of_nodes() == 300
        assert is_connected(graph)
        leaves = sum(1 for node in graph.nodes() if graph.degree(node) == 1)
        assert leaves >= 0.3 * 300  # pendants plus possibly some core leaves

    def test_social_surrogate_no_pendants(self):
        graph = social_surrogate(100, pendant_fraction=0.0, seed=2)
        leaves = sum(1 for node in graph.nodes() if graph.degree(node) == 1)
        assert leaves == 0

    def test_social_surrogate_deterministic(self):
        a = social_surrogate(120, seed=9)
        b = social_surrogate(120, seed=9)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_social_surrogate_validation(self):
        with pytest.raises(GraphError):
            social_surrogate(5)
        with pytest.raises(GraphError):
            social_surrogate(100, pendant_fraction=1.0)
        with pytest.raises(GraphError):
            social_surrogate(20, pendant_fraction=0.9, edges_per_node=4)

    def test_road_surrogate(self):
        graph, coordinates = road_surrogate(12, 15, seed=4)
        assert is_connected(graph)
        assert set(coordinates) == set(graph.nodes())


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert set(PAPER_NETWORKS) <= set(names)
        assert "karate" in names

    @pytest.mark.parametrize("name", ["flickr", "livejournal", "orkut"])
    def test_social_datasets_connected(self, name):
        dataset = load(name, scale=0.1, seed=0)
        assert is_connected(dataset.graph)
        assert dataset.coordinates is None
        assert dataset.paper_reference["nodes"] > 1e6

    def test_usa_road_has_coordinates(self):
        dataset = load("usa-road", scale=0.3, seed=0)
        assert dataset.coordinates is not None
        assert set(dataset.coordinates) == set(dataset.graph.nodes())

    def test_scale_changes_size(self):
        small = load("flickr", scale=0.1, seed=0)
        large = load("flickr", scale=0.3, seed=0)
        assert large.graph.number_of_nodes() > small.graph.number_of_nodes()

    def test_deterministic(self):
        a = load("orkut", scale=0.1, seed=3)
        b = load("orkut", scale=0.1, seed=3)
        assert a.graph.number_of_edges() == b.graph.number_of_edges()

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load("not-a-dataset")

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load("flickr", scale=0.0)

    def test_zero_fraction_structure_differs_between_surrogates(self):
        flickr = load("flickr", scale=0.15, seed=1).graph
        orkut = load("orkut", scale=0.15, seed=1).graph
        flickr_truth = betweenness_centrality(flickr)
        orkut_truth = betweenness_centrality(orkut)
        flickr_zeros = sum(1 for value in flickr_truth.values() if value == 0.0)
        orkut_zeros = sum(1 for value in orkut_truth.values() if value == 0.0)
        # Flickr surrogate has a much larger fringe of zero-betweenness nodes.
        assert flickr_zeros / len(flickr_truth) > orkut_zeros / len(orkut_truth)


class TestSubsets:
    def test_random_subset(self, karate):
        subset = random_subset(karate, 10, seed=1)
        assert len(subset) == 10
        assert len(set(subset)) == 10
        assert all(karate.has_node(node) for node in subset)

    def test_random_subset_too_large(self, karate):
        with pytest.raises(DatasetError):
            random_subset(karate, 100, seed=1)

    def test_random_subsets_independent(self, karate):
        subsets = random_subsets(karate, 5, 10, seed=2)
        assert len(subsets) == 5
        assert len({tuple(sorted(subset)) for subset in subsets}) > 1

    def test_l_hop_subset(self, karate):
        subset = l_hop_subset(karate, 0, 1)
        assert set(subset) == {0} | set(karate.neighbors(0))

    def test_geographic_subset(self):
        coordinates = {1: (0.0, 0.0), 2: (5.0, 5.0), 3: (10.0, 10.0)}
        inside = geographic_subset(coordinates, (0, 6), (0, 6))
        assert sorted(inside) == [1, 2]

    def test_geographic_subset_invalid_range(self):
        with pytest.raises(ValueError):
            geographic_subset({1: (0, 0)}, (5, 1), (0, 1))

    def test_road_areas_nested_sizes(self):
        dataset = load("usa-road", scale=0.4, seed=1)
        areas = road_areas(dataset.coordinates, graph=dataset.graph)
        assert set(areas) == {"NYC", "BAY", "CO", "FL"}
        assert len(areas["NYC"]) < len(areas["FL"])
        for nodes in areas.values():
            assert all(dataset.graph.has_node(node) for node in nodes)

    def test_road_areas_empty_coordinates(self):
        with pytest.raises(DatasetError):
            road_areas({})

    def test_subsets_by_size(self, karate):
        table = subsets_by_size(karate, [5, 10], 3, seed=4)
        assert set(table) == {5, 10}
        assert all(len(subset) == 5 for subset in table[5])
        assert len(table[10]) == 3


class TestGroundTruth:
    def test_exact_betweenness_matches_brandes(self, karate):
        assert exact_betweenness(karate) == betweenness_centrality(karate)

    def test_memory_cache_computes_once(self, karate, monkeypatch):
        cache = GroundTruthCache()
        calls = {"count": 0}
        import repro.datasets.ground_truth as module

        original = module.betweenness_centrality

        def counting(graph, **kwargs):
            calls["count"] += 1
            return original(graph, **kwargs)

        monkeypatch.setattr(module, "betweenness_centrality", counting)
        cache.get("karate", karate)
        cache.get("karate", karate)
        assert calls["count"] == 1

    def test_disk_cache_round_trip(self, karate, tmp_path):
        cache = GroundTruthCache(cache_dir=tmp_path)
        first = cache.get("karate", karate)
        # A fresh cache instance reads the JSON file instead of recomputing.
        reloaded = GroundTruthCache(cache_dir=tmp_path).get("karate", karate)
        assert reloaded == first
        assert list(tmp_path.glob("*.json"))

    def test_disk_cache_ignores_stale_entries(self, karate, path5, tmp_path):
        cache = GroundTruthCache(cache_dir=tmp_path)
        cache.get("shared-key", path5)
        # Same key but different graph size: the stale file is ignored.
        values = GroundTruthCache(cache_dir=tmp_path).get("shared-key", karate)
        assert len(values) == karate.number_of_nodes()
