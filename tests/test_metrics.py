"""Tests for ranking-quality and estimation-error metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.deviation import average_rank_deviation, rank_deviations
from repro.metrics.errors import (
    estimation_within_epsilon,
    max_absolute_error,
    mean_absolute_error,
    signed_relative_errors,
)
from repro.metrics.rank_correlation import (
    kendall_tau,
    rank_displacements,
    spearman_rank_correlation,
)
from repro.metrics.zeros import classify_zeros, relative_error_histogram


class TestSpearman:
    def test_identical_rankings(self):
        truth = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert spearman_rank_correlation(truth, dict(truth)) == pytest.approx(1.0)

    def test_reversed_ranking(self):
        truth = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        estimate = {"a": 0.5, "b": 1.0, "c": 2.0, "d": 3.0}
        assert spearman_rank_correlation(truth, estimate) == pytest.approx(-1.0)

    def test_formula_example(self):
        # Swapping two adjacent items in a 4-element ranking: sum d^2 = 2.
        truth = {1: 4.0, 2: 3.0, 3: 2.0, 4: 1.0}
        estimate = {1: 4.0, 2: 2.0, 3: 3.0, 4: 1.0}
        expected = 1 - 6 * 2 / (4 * 15)
        assert spearman_rank_correlation(truth, estimate) == pytest.approx(expected)

    def test_scale_invariance(self):
        truth = {i: float(i) for i in range(10)}
        estimate = {i: 100.0 * i + 5 for i in range(10)}
        assert spearman_rank_correlation(truth, estimate) == pytest.approx(1.0)

    def test_single_node(self):
        assert spearman_rank_correlation({"a": 1.0}, {"a": 0.2}) == 1.0

    def test_missing_node_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation({"a": 1.0, "b": 2.0}, {"a": 1.0})

    def test_ties_broken_by_id(self):
        # Both estimates are 0; ranks follow node ids, as the paper specifies.
        truth = {1: 0.2, 2: 0.1}
        estimate = {1: 0.0, 2: 0.0}
        assert spearman_rank_correlation(truth, estimate) == pytest.approx(1.0)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, truth):
        estimate = {key: 1.0 - value for key, value in truth.items()}
        value = spearman_rank_correlation(truth, estimate)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestKendall:
    def test_identical(self):
        truth = {i: float(i) for i in range(6)}
        assert kendall_tau(truth, dict(truth)) == pytest.approx(1.0)

    def test_reversed(self):
        truth = {i: float(i) for i in range(6)}
        estimate = {i: -float(i) for i in range(6)}
        assert kendall_tau(truth, estimate) == pytest.approx(-1.0)

    def test_agrees_in_sign_with_spearman(self):
        truth = {i: float(i) for i in range(8)}
        estimate = {i: float(i if i != 0 else 7.5) for i in range(8)}
        assert kendall_tau(truth, estimate) * spearman_rank_correlation(
            truth, estimate
        ) >= 0

    def test_rank_displacements(self):
        truth = {1: 3.0, 2: 2.0, 3: 1.0}
        estimate = {1: 1.0, 2: 2.0, 3: 3.0}
        displacements = rank_displacements(truth, estimate)
        assert displacements == {1: 2, 2: 0, 3: -2}


class TestErrors:
    def test_max_and_mean_absolute_error(self):
        truth = {1: 0.5, 2: 0.2}
        estimate = {1: 0.6, 2: 0.15}
        assert max_absolute_error(truth, estimate) == pytest.approx(0.1)
        assert mean_absolute_error(truth, estimate) == pytest.approx(0.075)

    def test_estimation_within_epsilon(self):
        truth = {1: 0.5}
        assert estimation_within_epsilon(truth, {1: 0.52}, 0.05)
        assert not estimation_within_epsilon(truth, {1: 0.6}, 0.05)

    def test_signed_relative_errors(self):
        truth = {1: 0.5, 2: 0.0, 3: 0.0, 4: 0.2}
        estimate = {1: 0.25, 2: 0.0, 3: 0.1, 4: 0.3}
        errors = signed_relative_errors(truth, estimate)
        assert errors[1] == pytest.approx(-50.0)
        assert errors[2] == 0.0
        assert math.isinf(errors[3])
        assert errors[4] == pytest.approx(50.0)

    def test_missing_estimates_treated_as_zero(self):
        truth = {1: 0.5}
        assert max_absolute_error(truth, {}) == pytest.approx(0.5)
        assert signed_relative_errors(truth, {})[1] == pytest.approx(-100.0)


class TestZeros:
    def test_classification(self):
        truth = {1: 0.0, 2: 0.3, 3: 0.0, 4: 0.1}
        estimate = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.05}
        stats = classify_zeros(truth, estimate)
        assert stats.num_nodes == 4
        assert stats.true_zeros == 2
        assert stats.false_zeros == 1
        assert stats.true_zero_fraction == pytest.approx(0.5)
        assert stats.false_zero_fraction == pytest.approx(0.25)

    def test_tolerance(self):
        truth = {1: 0.3}
        estimate = {1: 1e-9}
        assert classify_zeros(truth, estimate).false_zeros == 0
        assert classify_zeros(truth, estimate, tolerance=1e-6).false_zeros == 1

    def test_empty(self):
        stats = classify_zeros({}, {})
        assert stats.true_zero_fraction == 0.0

    def test_histogram_percentages_sum_to_100(self):
        truth = {i: 0.1 * (i + 1) for i in range(10)}
        estimate = {i: 0.1 * (i + 1) * (1.2 if i % 2 else 0.3) for i in range(10)}
        histogram = relative_error_histogram(truth, estimate)
        assert sum(percent for _, percent in histogram) == pytest.approx(100.0)

    def test_histogram_overflow_bucket(self):
        truth = {1: 0.0}
        estimate = {1: 0.5}  # infinite relative error
        histogram = relative_error_histogram(truth, estimate)
        assert histogram[-1][1] == pytest.approx(100.0)

    def test_histogram_invalid_edges(self):
        with pytest.raises(ValueError):
            relative_error_histogram({1: 1.0}, {1: 1.0}, bin_edges=(0.0,))


class TestRankDeviation:
    def test_zero_for_identical(self):
        truth = {1: 0.5, 2: 0.4, 3: 0.1}
        assert average_rank_deviation(truth, dict(truth)) == 0.0

    def test_per_node_values(self):
        truth = {1: 3.0, 2: 2.0, 3: 1.0, 4: 0.5}
        estimate = {1: 0.5, 2: 2.0, 3: 1.0, 4: 3.0}
        deviations = rank_deviations(truth, estimate)
        assert deviations[2] == pytest.approx(0.0)
        assert deviations[1] == pytest.approx(100.0 * 3 / 4)

    def test_subset_average(self):
        truth = {1: 3.0, 2: 2.0, 3: 1.0, 4: 0.5}
        estimate = {1: 0.5, 2: 2.0, 3: 1.0, 4: 3.0}
        assert average_rank_deviation(truth, estimate, nodes=[2, 3]) < \
            average_rank_deviation(truth, estimate, nodes=[1, 4])

    def test_empty(self):
        assert average_rank_deviation({}, {}) == 0.0
        assert rank_deviations({}, {}) == {}
