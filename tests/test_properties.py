"""Tests for graph summaries (Table II support)."""

from __future__ import annotations

from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import summarize


class TestSummarize:
    def test_karate_summary(self, karate):
        summary = summarize(karate)
        assert summary.num_nodes == 34
        assert summary.num_edges == 78
        assert summary.diameter == 5
        assert summary.diameter_is_exact
        assert summary.num_components == 1
        assert summary.num_cutpoints == 1
        assert summary.max_degree == 17
        assert abs(summary.avg_degree - 2 * 78 / 34) < 1e-12

    def test_path_summary(self):
        summary = summarize(path_graph(6))
        assert summary.diameter == 5
        assert summary.num_blocks == 5
        assert summary.num_cutpoints == 4

    def test_empty_graph(self):
        summary = summarize(Graph())
        assert summary.num_nodes == 0
        assert summary.diameter == 0
        assert summary.avg_degree == 0.0

    def test_estimated_diameter_flag(self, karate):
        summary = summarize(karate, exact=False, seed=3)
        assert not summary.diameter_is_exact
        assert summary.diameter >= 5
