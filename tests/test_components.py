"""Tests for connected components."""

from __future__ import annotations

from repro.graphs.components import (
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graphs.graph import Graph


class TestConnectedComponents:
    def test_single_component(self, karate):
        components = connected_components(karate)
        assert len(components) == 1
        assert len(components[0]) == 34

    def test_multiple_components(self):
        graph = Graph.from_edges([(0, 1), (2, 3), (3, 4)], nodes=[9])
        components = connected_components(graph)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2, 3]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_partition_covers_all_nodes(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], nodes=[7])
        components = connected_components(graph)
        covered = sorted(node for component in components for node in component)
        assert covered == [0, 1, 2, 3, 7]


class TestLargestComponent:
    def test_largest(self):
        graph = Graph.from_edges([(0, 1), (2, 3), (3, 4), (4, 5)])
        assert sorted(largest_connected_component(graph)) == [2, 3, 4, 5]

    def test_empty(self):
        assert largest_connected_component(Graph()) == []


class TestIsConnected:
    def test_connected(self, karate):
        assert is_connected(karate)

    def test_disconnected(self):
        assert not is_connected(Graph.from_edges([(0, 1), (2, 3)]))

    def test_empty_is_not_connected(self):
        assert not is_connected(Graph())

    def test_single_node_connected(self):
        graph = Graph()
        graph.add_node(0)
        assert is_connected(graph)
