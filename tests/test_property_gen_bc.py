"""Distribution-level property tests for Gen_bc on random graphs.

The empirical frequency with which each target appears as an inner node of a
``Gen_bc`` sample must match the conditional expectation computed by
exhaustively enumerating the PISP space (Lemma 20).  This ties the sampler,
the multistage pair selection, the rejection step and the bidirectional path
sampling together in one statistical check.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.components import largest_connected_component
from repro.graphs.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP


def conditional_expectations(space: PersonalizedISP, targets):
    """E[g(v, p)] under D-tilde (the approximate subspace), by enumeration."""
    target_set = set(targets)
    expected = {node: 0.0 for node in targets}
    mass = 0.0
    for path, probability in space.enumerate_paths():
        if len(path) == 3 and path[1] in target_set:
            continue
        mass += probability
        for inner in path[1:-1]:
            if inner in target_set:
                expected[inner] += probability
    if mass <= 0:
        return None
    return {node: value / mass for node, value in expected.items()}


def check_distribution(graph, targets, seed, draws=2500, tolerance=0.05):
    space = PersonalizedISP(graph, targets)
    expected = conditional_expectations(space, targets)
    if expected is None:
        return
    generator = GenBC(space, targets)
    rng = random.Random(seed)
    counts = {node: 0 for node in targets}
    for _ in range(draws):
        for index in generator.sample_losses(rng):
            counts[targets[index]] += 1
    for node in targets:
        assert counts[node] / draws == pytest.approx(
            expected[node], abs=tolerance
        ), node


class TestGenBCDistribution:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=6, deadline=None)
    def test_er_graphs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(6, 12), 0.35, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 4:
            return
        graph = graph.subgraph(component)
        targets = rng.sample(list(graph.nodes()), min(4, len(component)))
        check_distribution(graph, targets, seed)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=4, deadline=None)
    def test_powerlaw_graphs(self, seed):
        rng = random.Random(seed)
        graph = powerlaw_cluster_graph(rng.randint(12, 20), 2, 0.4, seed=rng.randint(0, 999))
        targets = rng.sample(list(graph.nodes()), 5)
        check_distribution(graph, targets, seed)
