"""Tests for repro.utils.timing."""

from __future__ import annotations

import time

import pytest

from repro.utils.timing import StageTimings, Timer


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            pass
        assert timer.elapsed >= 0.0

    def test_measures_sleep(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_elapsed_inside_block(self):
        with Timer() as timer:
            time.sleep(0.005)
            running = timer.elapsed
        assert running > 0.0
        assert timer.elapsed >= running

    def test_elapsed_frozen_after_exit(self):
        with Timer() as timer:
            pass
        first = timer.elapsed
        time.sleep(0.005)
        assert timer.elapsed == first


class TestStageTimings:
    def test_add_and_total(self):
        timings = StageTimings()
        timings.add("a", 1.0)
        timings.add("b", 2.0)
        timings.add("a", 0.5)
        assert timings.stages == {"a": 1.5, "b": 2.0}
        assert timings.total() == pytest.approx(3.5)

    def test_order_tracks_first_appearance(self):
        timings = StageTimings()
        timings.add("later", 1.0)
        timings.add("earlier", 1.0)
        timings.add("later", 1.0)
        assert timings.order == ["later", "earlier"]

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            StageTimings().add("a", -1.0)

    def test_measure_context_manager(self):
        timings = StageTimings()
        with timings.measure("work"):
            time.sleep(0.005)
        assert timings.stages["work"] >= 0.004

    def test_measure_accumulates(self):
        timings = StageTimings()
        for _ in range(2):
            with timings.measure("work"):
                time.sleep(0.003)
        assert timings.stages["work"] >= 0.005
