"""Unit tests for the worker-pool executor (:mod:`repro.parallel`).

The determinism contract — worker counts never change results — is asserted
end-to-end in ``test_backend_equivalence.py``; this module covers the
executor primitives themselves: worker-count resolution, chunk planning,
per-chunk RNG streams, ordered (i)map over in-process and process-pool
execution, pool-lifecycle semantics (clean close vs exception terminate),
and the shared-memory CSR handoff.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import parallel
from repro.graphs.graph import Graph


def _square_chunk(payload, chunk):
    offset = payload or 0
    return [offset + value * value for value in chunk]


def _piece_echo(payload, piece):
    chunk_index, draws = piece
    rng = parallel.chunk_rng(payload, chunk_index)
    return [rng.randrange(1000) for _ in range(draws)]


def _snapshot_degree_chunk(payload, chunk):
    """Chunk task resolving a (possibly shared-memory) graph payload."""
    from repro.graphs import csr as csr_module

    graph = parallel.resolve_payload_graph(payload[0])
    snapshot = csr_module.as_csr(graph)
    return [snapshot.degree(snapshot.index_of(node)) for node in chunk]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
        parallel.set_default_workers(None)
        assert parallel.resolve_workers() == 0
        assert parallel.resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        parallel.set_default_workers(None)
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "4")
        assert parallel.resolve_workers() == 4
        assert parallel.resolve_workers(2) == 2  # explicit argument wins

    def test_env_variable_invalid(self, monkeypatch):
        parallel.set_default_workers(None)
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=parallel.WORKERS_ENV_VAR):
            parallel.resolve_workers()

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "4")
        parallel.set_default_workers(0)
        try:
            assert parallel.resolve_workers() == 0
        finally:
            parallel.set_default_workers(None)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            parallel.resolve_workers(-1)
        with pytest.raises(TypeError):
            parallel.resolve_workers(2.5)
        with pytest.raises(TypeError):
            parallel.resolve_workers(True)

    def test_start_method_invalid(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "teleport")
        with pytest.raises(ValueError, match=parallel.START_METHOD_ENV_VAR):
            parallel.start_method()


class TestChunking:
    def test_chunked_splits_and_preserves_order(self):
        assert parallel.chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert parallel.chunked([], 3) == []

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError):
            parallel.chunked([1], 0)

    def test_plan_chunks_layout(self):
        assert parallel.plan_chunks(10, 4) == [(0, 4), (1, 4), (2, 2)]
        assert parallel.plan_chunks(4, 4, start_chunk=5) == [(5, 4)]
        assert parallel.plan_chunks(0, 4) == []

    def test_plan_chunks_is_schedule_only(self):
        # Two rounds of an adaptive schedule tile the same global stream as
        # one big draw with the same chunk size.
        first = parallel.plan_chunks(8, 4)
        second = parallel.plan_chunks(8, 4, start_chunk=len(first))
        assert first + second == parallel.plan_chunks(16, 4)


class TestChunkRNG:
    def test_streams_are_deterministic_and_independent(self):
        a1 = parallel.chunk_rng(7, 0).random()
        a2 = parallel.chunk_rng(7, 0).random()
        b = parallel.chunk_rng(7, 1).random()
        c = parallel.chunk_rng(8, 0).random()
        assert a1 == a2
        assert a1 != b
        assert a1 != c

    def test_base_seed_derivation_consumes_parent(self):
        import random

        parent = random.Random(3)
        first = parallel.derive_base_seed(parent)
        second = parallel.derive_base_seed(parent)
        assert first != second
        assert parallel.derive_base_seed(random.Random(3)) == first


class TestWorkerPool:
    CHUNKS = [[1, 2], [3], [4, 5, 6], []]
    EXPECTED = [[1, 4], [9], [16, 25, 36], []]

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_map_results_in_chunk_order(self, workers):
        with parallel.WorkerPool(
            _square_chunk, payload=0, workers=workers
        ) as pool:
            assert pool.map(self.CHUNKS) == self.EXPECTED

    @pytest.mark.parametrize("workers", [0, 2])
    def test_imap_streams_in_chunk_order(self, workers):
        with parallel.WorkerPool(
            _square_chunk, payload=0, workers=workers
        ) as pool:
            assert list(pool.imap(self.CHUNKS)) == self.EXPECTED

    def test_payload_is_shared(self):
        with parallel.WorkerPool(_square_chunk, payload=100, workers=2) as pool:
            assert pool.map([[1], [2]]) == [[101], [104]]

    def test_pool_reuse_across_map_calls(self):
        with parallel.WorkerPool(_square_chunk, payload=0, workers=2) as pool:
            assert pool.map([[1], [2]]) == [[1], [4]]
            assert pool.map([[3], [4]]) == [[9], [16]]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_chunk_rng_streams_match_across_worker_counts(self, workers):
        pieces = parallel.plan_chunks(10, 4)
        with parallel.WorkerPool(
            _piece_echo, payload=123, workers=workers
        ) as pool:
            draws = [value for part in pool.map(pieces) for value in part]
        expected = [
            value
            for chunk_index, count in pieces
            for value in _piece_echo(123, (chunk_index, count))
        ]
        assert draws == expected

    def test_close_is_idempotent(self):
        pool = parallel.WorkerPool(_square_chunk, workers=0)
        pool.map([[1]])
        pool.close()
        pool.close()


class TestSetDefaultWorkersMirroring:
    """`set_default_workers` mirrors into REPRO_WORKERS (spawn workers must
    resolve the same default as the parent) with displaced-value restore."""

    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        parallel.set_default_workers(None)

    def test_override_mirrors_into_environment(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
        parallel.set_default_workers(3)
        assert os.environ[parallel.WORKERS_ENV_VAR] == "3"
        parallel.set_default_workers(None)
        assert parallel.WORKERS_ENV_VAR not in os.environ

    def test_clearing_restores_displaced_value(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "7")
        parallel.set_default_workers(0)
        assert os.environ[parallel.WORKERS_ENV_VAR] == "0"
        parallel.set_default_workers(2)  # only the FIRST override displaces
        assert os.environ[parallel.WORKERS_ENV_VAR] == "2"
        parallel.set_default_workers(None)
        assert os.environ[parallel.WORKERS_ENV_VAR] == "7"
        assert parallel.default_workers() == 7

    def test_zero_override_mirrors_serial(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "5")
        parallel.set_default_workers(0)
        # A helper process re-reading the environment agrees with the parent.
        assert os.environ[parallel.WORKERS_ENV_VAR] == "0"
        assert parallel.resolve_workers() == 0


class TestStartMethodKnob:
    """`set_default_start_method` follows the full knob protocol."""

    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        parallel.set_default_start_method(None)

    def test_override_mirrors_and_restores(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "fork")
        parallel.set_default_start_method("spawn")
        assert os.environ[parallel.START_METHOD_ENV_VAR] == "spawn"
        assert parallel.start_method() == "spawn"
        parallel.set_default_start_method(None)
        assert os.environ[parallel.START_METHOD_ENV_VAR] == "fork"
        assert parallel.start_method() == "fork"

    def test_env_resolution_and_platform_default(self, monkeypatch):
        monkeypatch.delenv(parallel.START_METHOD_ENV_VAR, raising=False)
        assert parallel.start_method() is None
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "forkserver")
        assert parallel.start_method() == "forkserver"

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            parallel.set_default_start_method("threads")

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "threads")
        with pytest.raises(ValueError, match=parallel.START_METHOD_ENV_VAR):
            parallel.start_method()


class TestEagerEnvValidation:
    """Executor knob env vars are validated at resolve time, naming the
    variable, even when an explicit argument makes the value moot — the
    PR-2 REPRO_BACKEND pattern."""

    def test_invalid_workers_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=parallel.WORKERS_ENV_VAR):
            parallel.resolve_workers(2)

    def test_negative_workers_env_rejected(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "-1")
        with pytest.raises(ValueError, match=parallel.WORKERS_ENV_VAR):
            parallel.resolve_workers()

    def test_invalid_start_method_env_fails_resolve_workers(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "threads")
        with pytest.raises(ValueError, match=parallel.START_METHOD_ENV_VAR):
            parallel.resolve_workers(0)

    def test_invalid_shared_memory_env_fails_resolve_workers(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match=parallel.SHARED_MEMORY_ENV_VAR):
            parallel.resolve_workers(0)


class _RecordingPool:
    """Proxy around a real multiprocessing pool that records shutdown calls."""

    def __init__(self, real):
        self._real = real
        self.calls = []

    def close(self):
        self.calls.append("close")
        self._real.close()

    def terminate(self):
        self.calls.append("terminate")
        self._real.terminate()

    def join(self):
        self.calls.append("join")
        self._real.join()

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestPoolLifecycle:
    """Clean shutdown drains in-flight chunks (close + join); terminate is
    reserved for the exception path — a hard terminate on the clean path
    could kill workers mid-``imap`` and drop chunk results."""

    def test_clean_close_uses_close_then_join(self):
        pool = parallel.WorkerPool(_square_chunk, payload=0, workers=2)
        assert pool.map([[1], [2]]) == [[1], [4]]
        recorder = _RecordingPool(pool._pool)
        pool._pool = recorder
        pool.close()
        assert recorder.calls == ["close", "join"]
        assert pool._pool is None

    def test_exception_path_terminates(self):
        recorder = None
        with pytest.raises(RuntimeError, match="boom"):
            with parallel.WorkerPool(_square_chunk, payload=0, workers=2) as pool:
                pool.map([[1], [2]])
                recorder = _RecordingPool(pool._pool)
                pool._pool = recorder
                raise RuntimeError("boom")
        assert recorder.calls == ["terminate", "join"]

    def test_imap_results_survive_clean_exit(self):
        # Results pulled from imap must all arrive before the pool dies.
        chunks = [[value] for value in range(12)]
        with parallel.WorkerPool(_square_chunk, payload=0, workers=2) as pool:
            results = list(pool.imap(chunks))
        assert results == [[value * value] for value in range(12)]


_SHM_AVAILABLE = parallel.shared_memory_available()

shm = pytest.mark.skipif(
    not _SHM_AVAILABLE, reason="numpy/shared_memory unavailable"
)


def _ladder_graph(n: int = 12) -> Graph:
    edges = [(i, i + 1) for i in range(n - 1)]
    edges += [(i, i + 2) for i in range(n - 2)]
    return Graph.from_edges(edges)


def _attach_raises(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    block.close()
    return False


class TestSharedMemoryKnob:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        parallel.set_shared_memory_enabled(None)

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(parallel.SHARED_MEMORY_ENV_VAR, raising=False)
        assert parallel.shared_memory_enabled() is True

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "off")
        assert parallel.shared_memory_enabled() is False
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "on")
        assert parallel.shared_memory_enabled() is True

    def test_env_variable_invalid(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match=parallel.SHARED_MEMORY_ENV_VAR):
            parallel.shared_memory_enabled()

    def test_env_variable_invalid_rejected_eagerly(self, monkeypatch):
        # Mirrors the eager REPRO_BACKEND validation: a typo'd variable
        # fails at executor-configuration time, naming the variable, not
        # mid-sweep from deep inside a centrality call.
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match=parallel.SHARED_MEMORY_ENV_VAR):
            parallel.resolve_workers(2)

    def test_override_mirrors_and_restores(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARED_MEMORY_ENV_VAR, "on")
        parallel.set_shared_memory_enabled(False)
        assert os.environ[parallel.SHARED_MEMORY_ENV_VAR] == "0"
        assert parallel.shared_memory_enabled() is False
        parallel.set_shared_memory_enabled(None)
        assert os.environ[parallel.SHARED_MEMORY_ENV_VAR] == "on"
        assert parallel.shared_memory_enabled() is True


@shm
class TestSharedCSRPayload:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        parallel.set_shared_memory_enabled(None)

    def test_shareable_graph_wraps_only_csr(self):
        graph = _ladder_graph()
        parallel.set_shared_memory_enabled(True)
        wrapped = parallel.shareable_graph(graph, "csr")
        assert isinstance(wrapped, parallel.SharedCSRPayload)
        assert parallel.shareable_graph(graph, "dict") is graph
        parallel.set_shared_memory_enabled(False)
        assert parallel.shareable_graph(graph, "csr") is graph

    def test_resolve_payload_graph(self):
        from repro.graphs import csr as csr_module

        graph = _ladder_graph()
        payload = parallel.SharedCSRPayload(csr_module.as_csr(graph))
        assert parallel.resolve_payload_graph(payload) is csr_module.as_csr(graph)
        assert parallel.resolve_payload_graph(graph) is graph

    def test_pickle_roundtrip_attaches_zero_copy(self):
        from repro.graphs import csr as csr_module

        graph = _ladder_graph()
        snapshot = csr_module.as_csr(graph)
        payload = parallel.SharedCSRPayload(snapshot)
        try:
            attached = pickle.loads(pickle.dumps(payload))
            names = payload.block_names()
            assert len(names) == 2
            assert set(names) <= parallel._active_shared_blocks
            assert attached.n == snapshot.n
            assert attached.m == snapshot.m
            assert attached.labels == snapshot.labels
            assert list(attached.indptr) == list(snapshot.indptr)
            assert list(attached.indices) == list(snapshot.indices)
            # Pickling again reuses the existing export (one export per pool).
            pickle.dumps(payload)
            assert payload.block_names() == names
        finally:
            payload.release()
        assert payload.block_names() == []
        assert all(_attach_raises(name) for name in names)
        assert not parallel._active_shared_blocks & set(names)

    def test_release_is_idempotent(self):
        from repro.graphs import csr as csr_module

        payload = parallel.SharedCSRPayload(csr_module.as_csr(_ladder_graph()))
        pickle.dumps(payload)
        payload.release()
        payload.release()

    def test_export_failure_falls_back_to_pickle(self, monkeypatch):
        from repro.graphs import csr as csr_module

        def boom(data):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(parallel, "_export_array", boom)
        snapshot = csr_module.as_csr(_ladder_graph())
        payload = parallel.SharedCSRPayload(snapshot)
        attached = pickle.loads(pickle.dumps(payload))
        assert payload.block_names() == []
        assert attached.labels == snapshot.labels
        assert list(attached.indices) == list(snapshot.indices)

    def test_pool_releases_blocks_on_clean_close(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "spawn")
        graph = _ladder_graph(40)
        parallel.set_shared_memory_enabled(True)
        payload = parallel.shareable_graph(graph, "csr")
        nodes = list(graph.nodes())
        serial = _snapshot_degree_chunk((payload,), nodes)
        with parallel.WorkerPool(
            _snapshot_degree_chunk, payload=(payload,), workers=2
        ) as pool:
            results = pool.map([nodes[:20], nodes[20:]])
            names = payload.block_names()
            assert names  # the spawn pool actually exported blocks
        assert results[0] + results[1] == serial
        assert payload.block_names() == []
        assert all(_attach_raises(name) for name in names)

    def test_pool_releases_blocks_on_exception(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "spawn")
        graph = _ladder_graph(40)
        parallel.set_shared_memory_enabled(True)
        payload = parallel.shareable_graph(graph, "csr")
        nodes = list(graph.nodes())
        names = []
        with pytest.raises(RuntimeError, match="boom"):
            with parallel.WorkerPool(
                _snapshot_degree_chunk, payload=(payload,), workers=2
            ) as pool:
                pool.map([nodes[:20], nodes[20:]])
                names.extend(payload.block_names())
                assert names
                raise RuntimeError("boom")
        assert payload.block_names() == []
        assert all(_attach_raises(name) for name in names)
