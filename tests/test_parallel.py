"""Unit tests for the worker-pool executor (:mod:`repro.parallel`).

The determinism contract — worker counts never change results — is asserted
end-to-end in ``test_backend_equivalence.py``; this module covers the
executor primitives themselves: worker-count resolution, chunk planning,
per-chunk RNG streams, and ordered (i)map over in-process and process-pool
execution.
"""

from __future__ import annotations

import os

import pytest

from repro import parallel


def _square_chunk(payload, chunk):
    offset = payload or 0
    return [offset + value * value for value in chunk]


def _piece_echo(payload, piece):
    chunk_index, draws = piece
    rng = parallel.chunk_rng(payload, chunk_index)
    return [rng.randrange(1000) for _ in range(draws)]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
        parallel.set_default_workers(None)
        assert parallel.resolve_workers() == 0
        assert parallel.resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        parallel.set_default_workers(None)
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "4")
        assert parallel.resolve_workers() == 4
        assert parallel.resolve_workers(2) == 2  # explicit argument wins

    def test_env_variable_invalid(self, monkeypatch):
        parallel.set_default_workers(None)
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=parallel.WORKERS_ENV_VAR):
            parallel.resolve_workers()

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV_VAR, "4")
        parallel.set_default_workers(0)
        try:
            assert parallel.resolve_workers() == 0
        finally:
            parallel.set_default_workers(None)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            parallel.resolve_workers(-1)
        with pytest.raises(TypeError):
            parallel.resolve_workers(2.5)
        with pytest.raises(TypeError):
            parallel.resolve_workers(True)

    def test_start_method_invalid(self, monkeypatch):
        monkeypatch.setenv(parallel.START_METHOD_ENV_VAR, "teleport")
        with pytest.raises(ValueError, match=parallel.START_METHOD_ENV_VAR):
            parallel.start_method()


class TestChunking:
    def test_chunked_splits_and_preserves_order(self):
        assert parallel.chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert parallel.chunked([], 3) == []

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError):
            parallel.chunked([1], 0)

    def test_plan_chunks_layout(self):
        assert parallel.plan_chunks(10, 4) == [(0, 4), (1, 4), (2, 2)]
        assert parallel.plan_chunks(4, 4, start_chunk=5) == [(5, 4)]
        assert parallel.plan_chunks(0, 4) == []

    def test_plan_chunks_is_schedule_only(self):
        # Two rounds of an adaptive schedule tile the same global stream as
        # one big draw with the same chunk size.
        first = parallel.plan_chunks(8, 4)
        second = parallel.plan_chunks(8, 4, start_chunk=len(first))
        assert first + second == parallel.plan_chunks(16, 4)


class TestChunkRNG:
    def test_streams_are_deterministic_and_independent(self):
        a1 = parallel.chunk_rng(7, 0).random()
        a2 = parallel.chunk_rng(7, 0).random()
        b = parallel.chunk_rng(7, 1).random()
        c = parallel.chunk_rng(8, 0).random()
        assert a1 == a2
        assert a1 != b
        assert a1 != c

    def test_base_seed_derivation_consumes_parent(self):
        import random

        parent = random.Random(3)
        first = parallel.derive_base_seed(parent)
        second = parallel.derive_base_seed(parent)
        assert first != second
        assert parallel.derive_base_seed(random.Random(3)) == first


class TestWorkerPool:
    CHUNKS = [[1, 2], [3], [4, 5, 6], []]
    EXPECTED = [[1, 4], [9], [16, 25, 36], []]

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_map_results_in_chunk_order(self, workers):
        with parallel.WorkerPool(
            _square_chunk, payload=0, workers=workers
        ) as pool:
            assert pool.map(self.CHUNKS) == self.EXPECTED

    @pytest.mark.parametrize("workers", [0, 2])
    def test_imap_streams_in_chunk_order(self, workers):
        with parallel.WorkerPool(
            _square_chunk, payload=0, workers=workers
        ) as pool:
            assert list(pool.imap(self.CHUNKS)) == self.EXPECTED

    def test_payload_is_shared(self):
        with parallel.WorkerPool(_square_chunk, payload=100, workers=2) as pool:
            assert pool.map([[1], [2]]) == [[101], [104]]

    def test_pool_reuse_across_map_calls(self):
        with parallel.WorkerPool(_square_chunk, payload=0, workers=2) as pool:
            assert pool.map([[1], [2]]) == [[1], [4]]
            assert pool.map([[3], [4]]) == [[9], [16]]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_chunk_rng_streams_match_across_worker_counts(self, workers):
        pieces = parallel.plan_chunks(10, 4)
        with parallel.WorkerPool(
            _piece_echo, payload=123, workers=workers
        ) as pool:
            draws = [value for part in pool.map(pieces) for value in part]
        expected = [
            value
            for chunk_index, count in pieces
            for value in _piece_echo(123, (chunk_index, count))
        ]
        assert draws == expected

    def test_close_is_idempotent(self):
        pool = parallel.WorkerPool(_square_chunk, workers=0)
        pool.map([[1]])
        pool.close()
        pool.close()
