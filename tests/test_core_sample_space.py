"""Tests for the enumerated sample space and its partition."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.sample_space import EnumeratedSampleSpace, WeightedSample
from repro.errors import SamplingError


def uniform_space(values, is_exact=None):
    probability = 1.0 / len(values)
    return EnumeratedSampleSpace(
        [WeightedSample(value, probability) for value in values], is_exact=is_exact
    )


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            EnumeratedSampleSpace([WeightedSample("a", 0.4)])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            WeightedSample("a", -0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnumeratedSampleSpace([])

    def test_partition_masses(self):
        space = uniform_space(range(10), is_exact=lambda value: value < 3)
        assert space.lambda_exact == pytest.approx(0.3)
        assert space.lambda_approximate == pytest.approx(0.7)
        assert len(list(space.exact_samples())) == 3
        assert len(list(space.approximate_samples())) == 7
        assert len(list(space.all_samples())) == 10

    def test_default_partition_everything_approximate(self):
        space = uniform_space(range(4))
        assert space.lambda_exact == 0.0
        assert space.lambda_approximate == pytest.approx(1.0)


class TestSampling:
    def test_sample_approximate_excludes_exact(self):
        space = uniform_space(range(6), is_exact=lambda value: value < 3)
        rng = random.Random(1)
        draws = {space.sample_approximate(rng) for _ in range(200)}
        assert draws == {3, 4, 5}

    def test_sample_approximate_conditional_distribution(self):
        # P(x) proportional to original probabilities within the subspace.
        space = EnumeratedSampleSpace(
            [
                WeightedSample("exact", 0.5),
                WeightedSample("common", 0.4),
                WeightedSample("rare", 0.1),
            ],
            is_exact=lambda value: value == "exact",
        )
        rng = random.Random(3)
        counts = Counter(space.sample_approximate(rng) for _ in range(2000))
        assert counts["common"] / 2000 == pytest.approx(0.8, abs=0.05)
        assert counts["rare"] / 2000 == pytest.approx(0.2, abs=0.05)

    def test_sample_full_covers_everything(self):
        space = uniform_space(range(5), is_exact=lambda value: value == 0)
        rng = random.Random(5)
        draws = {space.sample_full(rng) for _ in range(300)}
        assert draws == {0, 1, 2, 3, 4}

    def test_empty_approximate_subspace_raises(self):
        space = uniform_space(range(3), is_exact=lambda value: True)
        with pytest.raises(SamplingError):
            space.sample_approximate(random.Random(0))
