"""Tests for the Exact_bc 2-hop exact-subspace evaluation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.brandes import betweenness_centrality
from repro.graphs.components import largest_connected_component
from repro.graphs.generators import erdos_renyi_graph, path_graph, star_graph
from repro.saphyra_bc.exact_bc import exact_two_hop_risks
from repro.saphyra_bc.isp import PersonalizedISP


def enumerate_exact_subspace(space: PersonalizedISP, targets):
    """Reference implementation: enumerate the PISP space and keep the
    length-2 paths whose middle node is a target."""
    target_set = set(targets)
    lambda_exact = 0.0
    risks = {node: 0.0 for node in targets}
    for path, probability in space.enumerate_paths():
        if len(path) == 3 and path[1] in target_set:
            lambda_exact += probability
            risks[path[1]] += probability
    return lambda_exact, risks


class TestAgainstEnumeration:
    def check(self, graph, targets):
        space = PersonalizedISP(graph, targets=targets)
        evaluation = exact_two_hop_risks(space, targets)
        expected_lambda, expected_risks = enumerate_exact_subspace(space, targets)
        assert evaluation.lambda_exact == pytest.approx(expected_lambda, abs=1e-9)
        for position, node in enumerate(targets):
            assert evaluation.risks[position] == pytest.approx(
                expected_risks[node], abs=1e-9
            ), node

    def test_karate_subset(self, karate):
        self.check(karate, [0, 2, 5, 11, 33])

    def test_karate_full(self, karate):
        self.check(karate, list(karate.nodes()))

    def test_path_graph(self):
        graph = path_graph(6)
        self.check(graph, [2, 3])

    def test_star_graph(self, star6):
        self.check(star6, [0, 1])

    def test_barbell(self, barbell):
        self.check(barbell, list(barbell.nodes())[:8])

    def test_two_triangles(self, two_triangles_shared_node):
        self.check(two_triangles_shared_node, [0, 1, 3])

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(5, 14), 0.3, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 4:
            return
        graph = graph.subgraph(component)
        targets = rng.sample(list(graph.nodes()), min(4, len(component)))
        self.check(graph, targets)


class TestNoFalseZeros:
    def test_positive_betweenness_implies_positive_exact_risk(self, karate):
        """Lemma 19: every target with bc > 0 has a non-zero exact risk."""
        bc = betweenness_centrality(karate)
        targets = list(karate.nodes())
        space = PersonalizedISP(karate, targets=targets)
        evaluation = exact_two_hop_risks(space, targets)
        for position, node in enumerate(targets):
            if bc[node] > space.bct.bc_a[node] + 1e-12:
                assert evaluation.risks[position] > 0.0, node

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_no_false_zeros(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(5, 15), 0.25, seed=rng.randint(0, 999))
        component = largest_connected_component(graph)
        if len(component) < 4:
            return
        graph = graph.subgraph(component)
        bc = betweenness_centrality(graph)
        targets = list(graph.nodes())
        space = PersonalizedISP(graph, targets=targets)
        evaluation = exact_two_hop_risks(space, targets)
        for position, node in enumerate(targets):
            if bc[node] > space.bct.bc_a[node] + 1e-12:
                assert evaluation.risks[position] > 0.0


class TestDiagnostics:
    def test_lambda_within_unit_interval(self, karate):
        space = PersonalizedISP(karate, targets=[0, 1, 2])
        evaluation = exact_two_hop_risks(space, [0, 1, 2])
        assert 0.0 <= evaluation.lambda_exact <= 1.0

    def test_work_counted(self, karate):
        space = PersonalizedISP(karate, targets=[0])
        evaluation = exact_two_hop_risks(space, [0])
        assert evaluation.work > 0

    def test_risks_bounded_by_lambda(self, karate):
        targets = [0, 1, 2, 3]
        space = PersonalizedISP(karate, targets=targets)
        evaluation = exact_two_hop_risks(space, targets)
        assert sum(evaluation.risks) <= evaluation.lambda_exact + 1e-9
