"""Tests for risk computation and ranking helpers."""

from __future__ import annotations

import pytest

from repro.core.hypothesis import SetMembershipHypothesisClass
from repro.core.ranking import rank_scores, ranking_to_ranks, ranks_from_scores
from repro.core.risk import empirical_risks, exact_expected_risks
from repro.core.sample_space import WeightedSample


class TestExactExpectedRisks:
    def test_weighted_sum(self):
        hypotheses = SetMembershipHypothesisClass(["a", "b"], keys_of=lambda s: s)
        samples = [
            WeightedSample(["a"], 0.5),
            WeightedSample(["a", "b"], 0.3),
            WeightedSample([], 0.2),
        ]
        risks = exact_expected_risks(hypotheses, samples)
        assert risks[0] == pytest.approx(0.8)
        assert risks[1] == pytest.approx(0.3)

    def test_zero_probability_samples_skipped(self):
        hypotheses = SetMembershipHypothesisClass(["a"], keys_of=lambda s: s)
        risks = exact_expected_risks(hypotheses, [WeightedSample(["a"], 0.0)])
        assert risks == [0.0]


class TestEmpiricalRisks:
    def test_average(self):
        hypotheses = SetMembershipHypothesisClass(["a", "b"], keys_of=lambda s: s)
        samples = [["a"], ["a", "b"], [], ["b"]]
        risks = empirical_risks(hypotheses, samples)
        assert risks[0] == pytest.approx(0.5)
        assert risks[1] == pytest.approx(0.5)

    def test_empty_sample_list(self):
        hypotheses = SetMembershipHypothesisClass(["a"], keys_of=lambda s: s)
        assert empirical_risks(hypotheses, []) == [0.0]


class TestRanking:
    def test_rank_scores_descending(self):
        ranking = rank_scores({"a": 0.1, "b": 0.9, "c": 0.5})
        assert ranking == ["b", "c", "a"]

    def test_ties_broken_by_name(self):
        ranking = rank_scores({3: 0.5, 1: 0.5, 2: 0.7})
        assert ranking == [2, 1, 3]

    def test_ranking_to_ranks(self):
        assert ranking_to_ranks(["x", "y", "z"]) == {"x": 1, "y": 2, "z": 3}

    def test_ranks_from_scores(self):
        ranks = ranks_from_scores({10: 0.0, 20: 1.0})
        assert ranks == {20: 1, 10: 2}

    def test_empty(self):
        assert rank_scores({}) == []
        assert ranking_to_ranks([]) == {}
