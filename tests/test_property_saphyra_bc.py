"""Property-based tests: SaPHyRa_bc against exact Brandes on random graphs.

These are the strongest correctness checks in the suite: for arbitrary
random connected graphs and arbitrary target subsets, the estimate must stay
within epsilon of the exact value (checked with a generous margin so the
probabilistic guarantee cannot make the suite flaky) and must never produce
false zeros.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.brandes import betweenness_centrality
from repro.graphs.components import largest_connected_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_road_graph,
)
from repro.saphyra_bc import SaPHyRaBC


def _connected_er_graph(rng):
    graph = erdos_renyi_graph(rng.randint(8, 30), 0.2, seed=rng.randint(0, 9999))
    component = largest_connected_component(graph)
    return graph.subgraph(component)


class TestEpsilonGuaranteeProperty:
    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=12, deadline=None)
    def test_er_graphs(self, seed):
        rng = random.Random(seed)
        graph = _connected_er_graph(rng)
        if graph.number_of_nodes() < 4:
            return
        targets = rng.sample(list(graph.nodes()), min(6, graph.number_of_nodes()))
        truth = betweenness_centrality(graph)
        result = SaPHyRaBC(epsilon=0.1, delta=0.05, seed=seed).rank(graph, targets)
        for node in targets:
            # 2x margin: the guarantee itself is probabilistic.
            assert abs(result.scores[node] - truth[node]) < 0.2

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=8, deadline=None)
    def test_ba_graphs(self, seed):
        rng = random.Random(seed)
        graph = barabasi_albert_graph(rng.randint(15, 40), 2, seed=rng.randint(0, 9999))
        targets = rng.sample(list(graph.nodes()), 8)
        truth = betweenness_centrality(graph)
        result = SaPHyRaBC(epsilon=0.1, delta=0.05, seed=seed).rank(graph, targets)
        for node in targets:
            assert abs(result.scores[node] - truth[node]) < 0.2

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=6, deadline=None)
    def test_road_like_graphs(self, seed):
        rng = random.Random(seed)
        graph, _ = grid_road_graph(
            rng.randint(4, 7), rng.randint(4, 7), seed=rng.randint(0, 9999)
        )
        if graph.number_of_nodes() < 6:
            return
        targets = rng.sample(list(graph.nodes()), min(6, graph.number_of_nodes()))
        truth = betweenness_centrality(graph)
        result = SaPHyRaBC(epsilon=0.1, delta=0.05, seed=seed).rank(graph, targets)
        for node in targets:
            assert abs(result.scores[node] - truth[node]) < 0.2


class TestNoFalseZeroProperty:
    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=10, deadline=None)
    def test_no_false_zeros(self, seed):
        rng = random.Random(seed)
        graph = _connected_er_graph(rng)
        if graph.number_of_nodes() < 4:
            return
        targets = list(graph.nodes())
        truth = betweenness_centrality(graph)
        result = SaPHyRaBC(epsilon=0.2, delta=0.2, seed=seed).rank(graph, targets)
        for node in targets:
            if truth[node] > 1e-12:
                assert result.scores[node] > 0.0


class TestScoreSanityProperty:
    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=10, deadline=None)
    def test_scores_in_unit_interval(self, seed):
        rng = random.Random(seed)
        graph = _connected_er_graph(rng)
        if graph.number_of_nodes() < 4:
            return
        targets = rng.sample(list(graph.nodes()), min(5, graph.number_of_nodes()))
        result = SaPHyRaBC(epsilon=0.2, delta=0.2, seed=seed).rank(graph, targets)
        for value in result.scores.values():
            assert -1e-9 <= value <= 1.0 + 1e-9
