"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_in_unit_interval,
    check_non_negative,
    check_positive,
    check_probability_pair,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")
        check_positive(5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero_and_positive(self):
        check_non_negative(0, "x")
        check_non_negative(3.5, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "x")


class TestCheckInUnitInterval:
    @pytest.mark.parametrize("value", [0.001, 0.5, 0.999])
    def test_open_interval_accepts_interior(self, value):
        check_in_unit_interval(value, "x")

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.1])
    def test_open_interval_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError):
            check_in_unit_interval(value, "x")

    @pytest.mark.parametrize("value", [0.0, 1.0, 0.5])
    def test_closed_interval_accepts_boundary(self, value):
        check_in_unit_interval(value, "x", open_ends=False)

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_closed_interval_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_in_unit_interval(value, "x", open_ends=False)


class TestCheckProbabilityPair:
    def test_accepts_valid_pair(self):
        check_probability_pair(0.05, 0.01)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            check_probability_pair(0.0, 0.01)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError, match="delta"):
            check_probability_pair(0.05, 1.0)
