"""Tests for VC sample sizes, the pi_max bound and Hoeffding helpers."""

from __future__ import annotations

import math

import pytest

from repro.stats.hoeffding import hoeffding_bound, hoeffding_sample_size
from repro.stats.vc import diameter_vc_bound, pi_max_vc_bound, vc_sample_size


class TestVcSampleSize:
    def test_formula(self):
        # N = c/eps^2 (d + ln 1/delta)
        expected = math.ceil(0.5 / 0.05**2 * (3 + math.log(1 / 0.01)))
        assert vc_sample_size(0.05, 0.01, 3) == expected

    def test_monotone_in_epsilon(self):
        assert vc_sample_size(0.01, 0.1, 2) > vc_sample_size(0.1, 0.1, 2)

    def test_monotone_in_vc(self):
        assert vc_sample_size(0.05, 0.1, 10) > vc_sample_size(0.05, 0.1, 1)

    def test_monotone_in_delta(self):
        assert vc_sample_size(0.05, 0.001, 2) > vc_sample_size(0.05, 0.1, 2)

    def test_zero_vc_allowed(self):
        assert vc_sample_size(0.1, 0.1, 0) >= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            vc_sample_size(0.0, 0.1, 1)
        with pytest.raises(ValueError):
            vc_sample_size(0.1, 1.5, 1)
        with pytest.raises(ValueError):
            vc_sample_size(0.1, 0.1, -1)


class TestPiMaxBound:
    @pytest.mark.parametrize(
        "pi_max,expected",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1023, 10)],
    )
    def test_values(self, pi_max, expected):
        assert pi_max_vc_bound(pi_max) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pi_max_vc_bound(-1)

    def test_monotone(self):
        values = [pi_max_vc_bound(k) for k in range(1, 50)]
        assert values == sorted(values)


class TestDiameterVcBound:
    def test_small_diameters(self):
        assert diameter_vc_bound(0) == 0
        assert diameter_vc_bound(2) == 0
        assert diameter_vc_bound(3) == 1

    def test_matches_pi_max(self):
        assert diameter_vc_bound(10) == pi_max_vc_bound(8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            diameter_vc_bound(-2)


class TestHoeffding:
    def test_bound_decreases_with_samples(self):
        assert hoeffding_bound(10_000, 0.05) < hoeffding_bound(100, 0.05)

    def test_bound_infinite_without_samples(self):
        assert hoeffding_bound(0, 0.05) == math.inf

    def test_sample_size_covers_bound(self):
        epsilon, delta = 0.05, 0.01
        n = hoeffding_sample_size(epsilon, delta)
        assert hoeffding_bound(n, delta) <= epsilon * 1.05

    def test_sample_size_union_bound_grows_with_hypotheses(self):
        assert hoeffding_sample_size(0.05, 0.01, 100) > hoeffding_sample_size(
            0.05, 0.01, 1
        )

    def test_invalid_hypothesis_count(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.05, 0.01, 0)
