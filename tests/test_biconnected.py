"""Tests for the biconnected-component decomposition."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.biconnected import (
    articulation_points,
    biconnected_components,
    bridges,
)
from repro.graphs.components import connected_components
from repro.graphs.generators import (
    barbell_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph


def brute_force_cutpoints(graph: Graph) -> set:
    """A node is a cutpoint iff removing it increases the component count
    within its own connected component."""
    baseline = len(connected_components(graph))
    cutpoints = set()
    for node in list(graph.nodes()):
        if graph.degree(node) == 0:
            continue
        reduced = graph.copy()
        reduced.remove_node(node)
        if len(connected_components(reduced)) > baseline:
            cutpoints.add(node)
    return cutpoints


class TestKnownStructures:
    def test_path_graph_blocks(self, path5):
        decomposition = biconnected_components(path5)
        assert len(decomposition.components) == 4
        assert all(len(block) == 2 for block in decomposition.components)
        assert decomposition.cutpoints == {1, 2, 3}

    def test_cycle_is_single_block(self, cycle6):
        decomposition = biconnected_components(cycle6)
        assert len(decomposition.components) == 1
        assert decomposition.cutpoints == set()

    def test_star_center_is_cutpoint(self, star6):
        decomposition = biconnected_components(star6)
        assert decomposition.cutpoints == {0}
        assert len(decomposition.components) == 6

    def test_two_triangles_shared_node(self, two_triangles_shared_node):
        decomposition = biconnected_components(two_triangles_shared_node)
        assert len(decomposition.components) == 2
        assert decomposition.cutpoints == {0}
        assert all(len(block) == 3 for block in decomposition.components)

    def test_barbell(self, barbell):
        decomposition = biconnected_components(barbell)
        sizes = sorted(len(block) for block in decomposition.components)
        # Two K5 blocks plus 4 bridge blocks along the 3-node path.
        assert sizes == [2, 2, 2, 2, 5, 5]
        assert len(decomposition.cutpoints) == 5

    def test_karate(self, karate):
        decomposition = biconnected_components(karate)
        assert decomposition.cutpoints == brute_force_cutpoints(karate)
        # Each edge appears in exactly one block.
        edge_count = sum(
            karate.subgraph(block).number_of_edges()
            for block in decomposition.components
        )
        assert edge_count == karate.number_of_edges()

    def test_isolated_node_has_no_block(self):
        graph = Graph.from_edges([(0, 1)], nodes=[5])
        decomposition = biconnected_components(graph)
        assert decomposition.components_of(5) == []

    def test_empty_graph(self):
        decomposition = biconnected_components(Graph())
        assert decomposition.components == []
        assert decomposition.cutpoints == set()


class TestDecompositionQueries:
    def test_components_of_cutpoint(self, two_triangles_shared_node):
        decomposition = biconnected_components(two_triangles_shared_node)
        assert len(decomposition.components_of(0)) == 2
        assert len(decomposition.components_of(1)) == 1

    def test_share_component(self, two_triangles_shared_node):
        decomposition = biconnected_components(two_triangles_shared_node)
        assert decomposition.share_component(1, 2)
        assert decomposition.share_component(0, 3)
        assert not decomposition.share_component(1, 3)

    def test_is_cutpoint(self, path5):
        decomposition = biconnected_components(path5)
        assert decomposition.is_cutpoint(2)
        assert not decomposition.is_cutpoint(0)


class TestBridges:
    def test_path_all_bridges(self, path5):
        assert len(bridges(path5)) == 4

    def test_cycle_no_bridges(self, cycle6):
        assert bridges(cycle6) == []

    def test_barbell_bridges(self, barbell):
        assert len(bridges(barbell)) == 4


class TestArticulationPoints:
    def test_wrapper_matches_decomposition(self, karate):
        assert articulation_points(karate) == biconnected_components(karate).cutpoints


class TestAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_cutpoints_match_brute_force(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 18), 0.22, seed=rng.randint(0, 999))
        decomposition = biconnected_components(graph)
        assert decomposition.cutpoints == brute_force_cutpoints(graph)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_every_edge_in_exactly_one_block(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 18), 0.25, seed=rng.randint(0, 999))
        decomposition = biconnected_components(graph)
        edge_to_blocks = {}
        for index, block in enumerate(decomposition.components):
            block_graph = graph.subgraph(block)
            for u, v in block_graph.edges():
                edge_to_blocks.setdefault(frozenset((u, v)), []).append(index)
        for edge in graph.edges():
            assert len(edge_to_blocks.get(frozenset(edge), [])) >= 1
        total_edges_in_blocks = sum(
            graph.subgraph(block).number_of_edges()
            for block in decomposition.components
        )
        assert total_edges_in_blocks == graph.number_of_edges()

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_blocks_are_2_connected_or_edges(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi_graph(rng.randint(4, 14), 0.3, seed=rng.randint(0, 999))
        decomposition = biconnected_components(graph)
        for block in decomposition.components:
            block_graph = graph.subgraph(block)
            if len(block) == 2:
                assert block_graph.number_of_edges() == 1
                continue
            # Removing any single node keeps the block connected.
            for node in block:
                reduced = block_graph.copy()
                reduced.remove_node(node)
                assert len(connected_components(reduced)) == 1
