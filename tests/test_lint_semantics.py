"""Unit tests for the ``repro.lint.semantics`` whole-program model.

The four PR 9 rules lean on three promises made here: module references
resolve through aliases and ``from ... import ... as`` renames, method
calls through ``self`` resolve to the right signature with the receiver
slot accounted for, and any binding the analysis cannot *see* (splats)
counts as a binding — the call graph must be conservative, never
accusatory.
"""

from __future__ import annotations

from repro.lint import all_rule_ids
from repro.lint.model import SourceFile
from repro.lint.semantics import call_sites, project_semantics
from repro.lint.semantics.modules import ModuleIndex, dotted_name_for

KNOWN = set(all_rule_ids())


def _source(path, text):
    return SourceFile(path, text, KNOWN)


def _project(*files):
    return project_semantics([_source(path, text) for path, text in files])


def _function(project, qualname_suffix):
    for function in project.functions():
        if function.qualname.endswith(qualname_suffix):
            return function
    raise AssertionError(f"no function matching {qualname_suffix!r}")


def _sites_to(project, caller_suffix, callee_name):
    caller = _function(project, caller_suffix)
    return [
        site for site in call_sites(project, caller)
        if site.callee.name == callee_name
    ]


# ----------------------------------------------------------------------
# Module index
# ----------------------------------------------------------------------
class TestModuleIndex:
    def test_dotted_names_drop_leading_src_and_init(self):
        assert dotted_name_for(_source("src/repro/graphs/csr.py", "")) == (
            "repro.graphs.csr"
        )
        assert dotted_name_for(_source("src/repro/lint/__init__.py", "")) == (
            "repro.lint"
        )
        # Only a LEADING src component is dropped.
        assert dotted_name_for(_source("pkg/src/mod.py", "")) == "pkg.src.mod"

    def test_suffix_resolution_is_unique_or_nothing(self):
        index = ModuleIndex(
            [
                _source("src/repro/graphs/csr.py", ""),
                _source("src/repro/engine/runner.py", ""),
                _source("src/other/engine/runner.py", ""),
            ]
        )
        assert index.resolve("repro.graphs.csr").source.path == (
            "src/repro/graphs/csr.py"
        )
        assert index.resolve("csr").source.path == "src/repro/graphs/csr.py"
        # Two files end in engine.runner — ambiguity resolves to nothing.
        assert index.resolve("engine.runner") is None
        # ...but the exact dotted name still wins.
        assert index.resolve("repro.engine.runner").source.path == (
            "src/repro/engine/runner.py"
        )
        assert index.resolve("no.such.module") is None

    def test_import_alias_table(self):
        project = _project(
            ("pkg/util.py", "def helper(x):\n    return x\n"),
            (
                "pkg/app.py",
                "import pkg.util as u\n"
                "from pkg.util import helper as h\n"
                "import pkg.util\n",
            ),
        )
        module = project.module_of(project.sources[1])
        assert module.module_aliases["u"] == "pkg.util"
        assert module.symbol_imports["h"] == ("pkg.util", "helper")
        assert "pkg.util" in module.plain_imports

    def test_relative_import_resolves_against_package(self):
        project = _project(
            ("pkg/sub/__init__.py", ""),
            ("pkg/sub/util.py", "def helper(x):\n    return x\n"),
            ("pkg/sub/app.py", "from .util import helper\n"),
        )
        module = project.module_of(project.sources[2])
        assert module.symbol_imports["helper"] == ("pkg.sub.util", "helper")


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class TestSymbolTable:
    def test_signature_shape(self):
        project = _project(
            (
                "pkg/mod.py",
                "def f(a, b, *args, c=None, **kwargs):\n    return a\n",
            )
        )
        function = _function(project, "pkg.mod.f")
        assert function.positional == ("a", "b")
        assert function.kwonly == ("c",)
        assert function.has_varargs and function.has_kwargs
        assert function.accepts("a") and function.accepts("c")
        assert not function.accepts("kwargs")

    def test_method_positional_binding_skips_receiver(self):
        project = _project(
            (
                "pkg/mod.py",
                "class C:\n"
                "    def m(self, a, b=None):\n"
                "        return a\n"
                "    @staticmethod\n"
                "    def s(a, b=None):\n"
                "        return a\n",
            )
        )
        method = _function(project, "C.m")
        assert method.binding_positional(1, bound_receiver=True) == {"a"}
        assert method.binding_positional(2, bound_receiver=False) == {"self", "a"}
        static = _function(project, "C.s")
        assert static.binding_positional(1, bound_receiver=True) == {"a"}

    def test_knob_names_minted_from_env_declarations(self):
        project = _project(
            (
                "src/repro/knobs.py",
                'SSSP_ENV_VAR = "REPRO_SSSP_KERNEL"\n'
                "import os\n"
                'WORKERS = os.environ.get("REPRO_WORKERS", "1")\n',
            ),
            (
                "tests/helper.py",
                'import os\nX = os.environ.get("REPRO_TEST_ONLY", "")\n',
            ),
        )
        knobs = project.knob_names(exclude_parts=("tests",))
        assert knobs == {"sssp_kernel", "workers"}
        assert project.knob_names() == {"sssp_kernel", "workers", "test_only"}

    def test_project_model_is_memoized_per_source_list(self):
        sources = [_source("pkg/mod.py", "x = 1\n")]
        assert project_semantics(sources) is project_semantics(sources)


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_local_call_binds_keyword_and_positional(self):
        project = _project(
            (
                "pkg/mod.py",
                "def callee(a, backend=None):\n"
                "    return a\n"
                "def by_kw(a, backend=None):\n"
                "    return callee(a, backend=backend)\n"
                "def by_pos(a, backend=None):\n"
                "    return callee(a, backend)\n"
                "def dropped(a, backend=None):\n"
                "    return callee(a)\n",
            )
        )
        (kw_site,) = _sites_to(project, "by_kw", "callee")
        assert kw_site.binds("backend") and kw_site.binds("a")
        (pos_site,) = _sites_to(project, "by_pos", "callee")
        assert pos_site.binds("backend")
        (dropped_site,) = _sites_to(project, "dropped", "callee")
        assert dropped_site.binds("a") and not dropped_site.binds("backend")

    def test_aliased_import_call_resolves(self):
        project = _project(
            ("pkg/util.py", "def helper(x, backend=None):\n    return x\n"),
            (
                "pkg/app.py",
                "import pkg.util as u\n"
                "def run(x, backend=None):\n"
                "    return u.helper(x)\n",
            ),
        )
        (site,) = _sites_to(project, "app.run", "helper")
        assert site.callee.qualname == "pkg.util.helper"
        assert not site.binds("backend")

    def test_from_import_as_call_resolves(self):
        project = _project(
            ("pkg/util.py", "def helper(x, backend=None):\n    return x\n"),
            (
                "pkg/app.py",
                "from pkg.util import helper as h\n"
                "def run(x, backend=None):\n"
                "    return h(x, backend=backend)\n",
            ),
        )
        (site,) = _sites_to(project, "app.run", "helper")
        assert site.callee.qualname == "pkg.util.helper"
        assert site.binds("backend")

    def test_self_method_call_resolves_with_receiver_offset(self):
        project = _project(
            (
                "pkg/mod.py",
                "class C:\n"
                "    def callee(self, a, backend=None):\n"
                "        return a\n"
                "    def caller(self, a, backend=None):\n"
                "        return self.callee(a, backend)\n",
            )
        )
        (site,) = _sites_to(project, "C.caller", "callee")
        # Two positional args through self. bind (a, backend) — the
        # receiver slot is implicit, not the first argument.
        assert site.binds("a") and site.binds("backend")

    def test_kwargs_splat_counts_as_forwarding(self):
        project = _project(
            (
                "pkg/mod.py",
                "def callee(a, backend=None):\n"
                "    return a\n"
                "def star(a, **kwargs):\n"
                "    return callee(a, **kwargs)\n"
                "def args_star(extra):\n"
                "    return callee(*extra)\n",
            )
        )
        (splat,) = _sites_to(project, "mod.star", "callee")
        assert splat.binds("backend")
        (args_splat,) = _sites_to(project, "args_star", "callee")
        assert args_splat.binds("backend") and args_splat.binds("a")

    def test_unresolvable_calls_are_invisible(self):
        project = _project(
            (
                "pkg/mod.py",
                "import json\n"
                "def run(x):\n"
                "    json.dumps(x)\n"
                "    unknown_name(x)\n"
                "    return x\n",
            )
        )
        function = _function(project, "pkg.mod.run")
        assert call_sites(project, function) == []
