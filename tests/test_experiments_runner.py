"""Tests for the experiment runner and the figure/table drivers.

Everything runs on the ``smoke`` configuration (tiny graphs, capped sample
counts) so the whole module completes in well under a minute.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    epsilon_sweep,
    figure3_running_time,
    figure4_rank_correlation,
    figure5_subset_size,
    figure6_relative_error,
    figure7_road_case_study,
)
from repro.experiments.runner import ALGORITHM_LABELS, ExperimentRunner
from repro.experiments.tables import table1_vc_bounds, table2_networks, table3_subsets


@pytest.fixture(scope="module")
def smoke_runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig.smoke())


@pytest.fixture(scope="module")
def road_runner() -> ExperimentRunner:
    config = ExperimentConfig(
        datasets=("usa-road",),
        scale=0.3,
        epsilons=(0.1,),
        subset_size=15,
        num_subsets=1,
        subset_sizes=(10,),
        max_samples_cap=2_000,
    )
    return ExperimentRunner(config)


class TestRunnerCaching:
    def test_dataset_cached(self, smoke_runner):
        assert smoke_runner.dataset("flickr") is smoke_runner.dataset("flickr")

    def test_dag_cache_config_applied_lazily(self, monkeypatch):
        from repro.engine import dag_cache_enabled, set_dag_cache_enabled
        from repro.engine.dag_cache import DAG_CACHE_ENV_VAR

        monkeypatch.delenv(DAG_CACHE_ENV_VAR, raising=False)
        try:
            runner = ExperimentRunner(
                ExperimentConfig(datasets=("flickr",), scale=0.05, dag_cache=False)
            )
            # Merely constructing (or inspecting) a runner flips nothing.
            assert dag_cache_enabled()
            runner.dataset("flickr")  # first real work applies the override
            assert not dag_cache_enabled()
        finally:
            set_dag_cache_enabled(None)

    def test_new_knob_configs_applied_lazily(self, monkeypatch):
        from repro.engine import dag_cache as dag_cache_module
        from repro import parallel
        from repro.graphs import csr as csr_module

        monkeypatch.delenv(parallel.START_METHOD_ENV_VAR, raising=False)
        monkeypatch.delenv(dag_cache_module.DAG_CACHE_SIZE_ENV_VAR, raising=False)
        monkeypatch.delenv(dag_cache_module.DAG_CACHE_BUDGET_ENV_VAR, raising=False)
        monkeypatch.delenv(dag_cache_module.DAG_CACHE_DELTA_ENV_VAR, raising=False)
        monkeypatch.delenv(
            dag_cache_module.DELTA_JOURNAL_SIZE_ENV_VAR, raising=False
        )
        try:
            runner = ExperimentRunner(
                ExperimentConfig(
                    datasets=("flickr",),
                    scale=0.05,
                    backend="csr",
                    start_method="spawn",
                    dag_cache_size=77,
                    dag_cache_budget=88_888,
                    dag_cache_delta="on",
                    delta_journal_size=99,
                )
            )
            # Construction flips nothing.
            assert parallel.start_method() is None
            assert dag_cache_module.resolve_dag_cache_size() != 77
            assert dag_cache_module.resolve_dag_cache_delta() == "auto"
            runner.dataset("flickr")  # first real work applies the overrides
            assert parallel.start_method() == "spawn"
            assert csr_module.default_backend() == "csr"
            assert dag_cache_module.resolve_dag_cache_size() == 77
            assert dag_cache_module.resolve_dag_cache_budget() == 88_888
            assert dag_cache_module.resolve_dag_cache_delta() == "on"
            assert dag_cache_module.resolve_delta_journal_size() == 99
        finally:
            csr_module.set_default_backend(None)
            parallel.set_default_start_method(None)
            dag_cache_module.set_default_dag_cache_size(None)
            dag_cache_module.set_default_dag_cache_budget(None)
            dag_cache_module.set_default_dag_cache_delta(None)
            dag_cache_module.set_default_delta_journal_size(None)

    def test_block_cut_tree_cached(self, smoke_runner):
        assert smoke_runner.block_cut_tree("flickr") is smoke_runner.block_cut_tree(
            "flickr"
        )

    def test_ground_truth_covers_all_nodes(self, smoke_runner):
        truth = smoke_runner.ground_truth("flickr")
        assert len(truth) == smoke_runner.dataset("flickr").graph.number_of_nodes()

    def test_whole_network_estimate_cached(self, smoke_runner):
        first = smoke_runner.whole_network_estimate("kadabra", "flickr", 0.2)
        second = smoke_runner.whole_network_estimate("kadabra", "flickr", 0.2)
        assert first is second

    def test_subsets_deterministic(self, smoke_runner):
        first = smoke_runner.subsets("flickr", 10, 2)
        second = smoke_runner.subsets("flickr", 10, 2)
        assert first == second

    def test_unknown_algorithm_rejected(self, smoke_runner):
        with pytest.raises(ValueError):
            smoke_runner.subset_estimate("mystery", "flickr", [0, 1], 0.1)


class TestEvaluation:
    def test_evaluate_subset_fields(self, smoke_runner):
        subset = smoke_runner.subsets("flickr", 10, 1)[0]
        evaluation = smoke_runner.evaluate_subset("flickr", "saphyra", 0.2, subset, 0)
        assert evaluation.dataset == "flickr"
        assert evaluation.algorithm == "saphyra"
        assert evaluation.subset_size == 10
        assert -1.0 <= evaluation.spearman <= 1.0
        assert evaluation.max_abs_error >= 0.0
        assert evaluation.num_samples > 0
        assert 0.0 <= evaluation.false_zero_fraction <= 1.0

    def test_saphyra_meets_epsilon_on_smoke_graph(self, smoke_runner):
        subset = smoke_runner.subsets("flickr", 10, 1)[0]
        evaluation = smoke_runner.evaluate_subset("flickr", "saphyra", 0.1, subset, 0)
        assert evaluation.max_abs_error < 0.1


class TestEpsilonSweep:
    def test_rows_cover_grid(self, smoke_runner):
        rows = smoke_runner.epsilon_sweep()
        config = smoke_runner.config
        expected = (
            len(config.datasets) * len(config.epsilons) * len(config.algorithms)
        )
        assert len(rows) == expected
        for row in rows:
            assert row.algorithm in ALGORITHM_LABELS
            assert row.num_subsets == config.num_subsets
            assert row.spearman_ci_low <= row.mean_spearman <= row.spearman_ci_high

    def test_figure3_and_4_views(self, smoke_runner):
        rows = smoke_runner.epsilon_sweep()
        fig3 = figure3_running_time(rows=rows)
        fig4 = figure4_rank_correlation(rows=rows)
        assert set(fig3) == set(smoke_runner.config.datasets)
        for dataset, curves in fig3.items():
            assert set(curves) == {
                ALGORITHM_LABELS[name] for name in smoke_runner.config.algorithms
            }
            for points in curves.values():
                assert len(points) == len(smoke_runner.config.epsilons)
        for curves in fig4.values():
            for points in curves.values():
                for _, mean, low, high in points:
                    assert low <= mean <= high


class TestOtherFigures:
    def test_figure5(self, smoke_runner):
        rows = figure5_subset_size(runner=smoke_runner, epsilon=0.2)
        sizes = {row.subset_size for row in rows}
        assert sizes == set(smoke_runner.config.subset_sizes)

    def test_figure6(self, smoke_runner):
        rows = figure6_relative_error(runner=smoke_runner, epsilon=0.2)
        assert {row.algorithm for row in rows} == set(smoke_runner.config.algorithms)
        for row in rows:
            assert 0.0 <= row.true_zero_percent <= 100.0
            assert 0.0 <= row.false_zero_percent <= 100.0
            if row.algorithm in ("saphyra", "saphyra_full"):
                assert row.false_zero_percent == 0.0
            total = sum(percent for _, percent in row.histogram)
            assert total == pytest.approx(100.0)

    def test_figure7(self, road_runner):
        rows = figure7_road_case_study(runner=road_runner, epsilon=0.1)
        areas = {row.area for row in rows}
        assert areas == {"NYC", "BAY", "CO", "FL"}
        for row in rows:
            assert row.running_time_seconds >= 0.0
            assert 0.0 <= row.rank_deviation_percent <= 100.0

    def test_figure7_requires_coordinates(self, smoke_runner):
        with pytest.raises(ValueError):
            figure7_road_case_study(runner=smoke_runner, dataset="flickr")


class TestTables:
    def test_table1(self, smoke_runner):
        rows = table1_vc_bounds(runner=smoke_runner)
        assert len(rows) == 2 * len(smoke_runner.config.datasets)
        for row in rows:
            assert row.report.personalized_vc <= row.report.riondato_vc

    def test_table2(self, smoke_runner):
        rows = table2_networks(runner=smoke_runner)
        assert [row.dataset for row in rows] == list(smoke_runner.config.datasets)
        for row in rows:
            assert row.summary.num_nodes > 0
            assert row.paper_nodes > row.summary.num_nodes

    def test_table3(self, road_runner):
        rows = table3_subsets(runner=road_runner)
        assert len(rows) == 4
        sizes = [row.num_nodes for row in rows]
        assert sizes == sorted(sizes)
        assert all(row.num_nodes > 0 for row in rows)

    def test_table3_requires_coordinates(self, smoke_runner):
        with pytest.raises(ValueError):
            table3_subsets(runner=smoke_runner, dataset="flickr")
